package mal

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/batalg"
	"repro/internal/recycler"
)

func figure1Catalog() *MapCatalog {
	cat := NewMapCatalog()
	cat.Put("people_name", bat.FromStrings([]string{"John Wayne", "Roger Moore", "Bob Fosse", "Will Smith"}))
	cat.Put("people_age", bat.FromInts([]int64{1907, 1927, 1927, 1968}))
	return cat
}

// figure1Program builds the MAL plan of Figure 1:
// bind age; select 1927; fetch names.
func figure1Program() *Program {
	b := NewBuilder()
	age := b.Emit("bind", CS("people_age"))
	cand := b.Emit("select", V(age), CI(1927))
	name := b.Emit("bind", CS("people_name"))
	res := b.Emit("fetch", V(cand), V(name))
	b.Return([]string{"name"}, res)
	return b.Program()
}

func TestInterpFigure1(t *testing.T) {
	ip := &Interp{Cat: figure1Catalog()}
	out, err := ip.Run(figure1Program())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Kind != KBAT {
		t.Fatalf("out = %v", out)
	}
	res := out[0].B
	if res.Len() != 2 || res.StrAt(0) != "Roger Moore" || res.StrAt(1) != "Bob Fosse" {
		t.Fatalf("result = %v", res)
	}
}

func TestInterpAggregates(t *testing.T) {
	cat := NewMapCatalog()
	cat.Put("t_v", bat.FromInts([]int64{5, 2, 9, 2}))
	b := NewBuilder()
	v := b.Emit("bind", CS("t_v"))
	s := b.Emit("sum", V(v))
	c := b.Emit("count", V(v))
	mn := b.Emit("min", V(v))
	mx := b.Emit("max", V(v))
	b.Return([]string{"s", "c", "mn", "mx"}, s, c, mn, mx)
	out, err := (&Interp{Cat: cat}).Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if out[0].I != 18 || out[1].I != 4 || out[2].I != 2 || out[3].I != 9 {
		t.Fatalf("out = %v", out)
	}
}

func TestInterpGroupAggregate(t *testing.T) {
	cat := NewMapCatalog()
	cat.Put("t_k", bat.FromInts([]int64{1, 2, 1}))
	cat.Put("t_v", bat.FromInts([]int64{10, 20, 30}))
	b := NewBuilder()
	k := b.Emit("bind", CS("t_k"))
	v := b.Emit("bind", CS("t_v"))
	ids, ext, cnt := b.Emit3("group", V(k))
	sums := b.Emit("sum_per_group", V(v), V(ids), V(ext))
	keys := b.Emit("fetch", V(ext), V(k))
	b.Return([]string{"k", "sum", "n"}, keys, sums, cnt)
	out, err := (&Interp{Cat: cat}).Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out[0].B.Ints(), []int64{1, 2}) {
		t.Fatalf("keys = %v", out[0].B.Ints())
	}
	if !reflect.DeepEqual(out[1].B.Ints(), []int64{40, 20}) {
		t.Fatalf("sums = %v", out[1].B.Ints())
	}
	if !reflect.DeepEqual(out[2].B.Ints(), []int64{2, 1}) {
		t.Fatalf("counts = %v", out[2].B.Ints())
	}
}

func TestInterpJoin(t *testing.T) {
	cat := NewMapCatalog()
	cat.Put("l", bat.FromInts([]int64{1, 2, 3}))
	cat.Put("r", bat.FromInts([]int64{2, 3, 4}))
	b := NewBuilder()
	l := b.Emit("bind", CS("l"))
	r := b.Emit("bind", CS("r"))
	lo, ro := b.Emit2("join", V(l), V(r))
	b.Return([]string{"lo", "ro"}, lo, ro)
	out, err := (&Interp{Cat: cat}).Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if out[0].B.Len() != 2 || out[1].B.Len() != 2 {
		t.Fatalf("join lens = %d,%d", out[0].B.Len(), out[1].B.Len())
	}
}

func TestInterpErrors(t *testing.T) {
	ip := &Interp{Cat: NewMapCatalog()}
	b := NewBuilder()
	x := b.Emit("bind", CS("missing"))
	b.Return(nil, x)
	if _, err := ip.Run(b.Program()); err == nil {
		t.Fatal("expected unknown-BAT error")
	}
	b2 := NewBuilder()
	y := b2.Emit("frobnicate")
	b2.Return(nil, y)
	if _, err := ip.Run(b2.Program()); err == nil {
		t.Fatal("expected unknown-op error")
	}
	b3 := NewBuilder()
	z := b3.Emit("sum", CI(3))
	b3.Return(nil, z)
	if _, err := ip.Run(b3.Program()); err == nil {
		t.Fatal("expected type error")
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: "select", Args: []Arg{V(0), CI(1927)}, Rets: []int{1}}
	if got := in.String(); got != "X_1 := select(X_0, 1927:int)" {
		t.Fatalf("String = %q", got)
	}
}

func TestCSEMergesDuplicates(t *testing.T) {
	b := NewBuilder()
	age := b.Emit("bind", CS("people_age"))
	c1 := b.Emit("select", V(age), CI(1927))
	c2 := b.Emit("select", V(age), CI(1927)) // duplicate
	name := b.Emit("bind", CS("people_name"))
	f1 := b.Emit("fetch", V(c1), V(name))
	f2 := b.Emit("fetch", V(c2), V(name)) // becomes duplicate after rewrite
	b.Return([]string{"a", "b"}, f1, f2)
	p := CSE{}.Optimize(b.Program())
	nsel := 0
	nfetch := 0
	for _, in := range p.Instrs {
		switch in.Op {
		case "select":
			nsel++
		case "fetch":
			nfetch++
		}
	}
	if nsel != 1 || nfetch != 1 {
		t.Fatalf("after CSE: %d selects, %d fetches; want 1,1\n%s", nsel, nfetch, p)
	}
	// Program must still run and both results be identical.
	out, err := (&Interp{Cat: figure1Catalog()}).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].B != out[1].B {
		t.Fatal("CSE results should alias")
	}
}

func TestDeadCodeRemovesUnused(t *testing.T) {
	b := NewBuilder()
	age := b.Emit("bind", CS("people_age"))
	_ = b.Emit("select", V(age), CI(1907)) // dead
	keep := b.Emit("select", V(age), CI(1927))
	b.Return([]string{"r"}, keep)
	p := DeadCode{}.Optimize(b.Program())
	if len(p.Instrs) != 2 {
		t.Fatalf("instrs = %d, want 2\n%s", len(p.Instrs), p)
	}
	out, err := (&Interp{Cat: figure1Catalog()}).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].B.Len() != 2 {
		t.Fatalf("result len = %d", out[0].B.Len())
	}
}

func TestDefaultPipelinePreservesSemantics(t *testing.T) {
	ip := &Interp{Cat: figure1Catalog()}
	raw, err := ip.Run(figure1Program())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ip.Run(DefaultPipeline().Run(figure1Program()))
	if err != nil {
		t.Fatal(err)
	}
	if raw[0].B.Len() != opt[0].B.Len() {
		t.Fatal("optimized program changed results")
	}
}

func TestProgramString(t *testing.T) {
	s := figure1Program().String()
	if !strings.Contains(s, "select(") || !strings.Contains(s, "bind(") {
		t.Fatalf("program rendering missing ops:\n%s", s)
	}
}

func TestRecyclerHitsAcrossRuns(t *testing.T) {
	cat := figure1Catalog()
	rc := recycler.New(1<<20, recycler.PolicyLRU)
	ip := &Interp{Cat: cat, Recycler: rc}
	for i := 0; i < 3; i++ {
		if _, err := ip.Run(figure1Program()); err != nil {
			t.Fatal(err)
		}
	}
	st := rc.Stats()
	// Two recyclable instrs (select, fetch) x 3 runs = 6 lookups, 4 hits.
	if st.Hits != 4 {
		t.Fatalf("hits = %d, want 4 (stats: %+v)", st.Hits, st)
	}
}

func TestRecyclerInvalidatedByCatalogVersion(t *testing.T) {
	cat := figure1Catalog()
	rc := recycler.New(1<<20, recycler.PolicyLRU)
	ip := &Interp{Cat: cat, Recycler: rc}
	out1, err := ip.Run(figure1Program())
	if err != nil {
		t.Fatal(err)
	}
	if out1[0].B.Len() != 2 {
		t.Fatal("bad first run")
	}
	// Update the base BAT: version bump changes bind signatures, so stale
	// cached results must not be returned.
	cat.Put("people_age", bat.FromInts([]int64{1927, 1, 1, 1}))
	rc.Invalidate("people_age")
	out2, err := ip.Run(figure1Program())
	if err != nil {
		t.Fatal(err)
	}
	if out2[0].B.Len() != 1 || out2[0].B.StrAt(0) != "John Wayne" {
		t.Fatalf("post-update result wrong: %v", out2[0].B)
	}
}

func TestRecycledMatchesUnrecycled(t *testing.T) {
	cat := NewMapCatalog()
	cat.Put("v", bat.FromInts([]int64{3, 1, 4, 1, 5, 9, 2, 6}))
	build := func() *Program {
		b := NewBuilder()
		v := b.Emit("bind", CS("v"))
		cand := b.Emit("theta_select", V(v), CI(int64(batalg.CmpGT)), CI(2))
		vals := b.Emit("fetch", V(cand), V(v))
		s := b.Emit("sum", V(vals))
		b.Return([]string{"s"}, s)
		return b.Program()
	}
	plain, err := (&Interp{Cat: cat}).Run(build())
	if err != nil {
		t.Fatal(err)
	}
	rc := recycler.New(1<<20, recycler.PolicyBenefit)
	ipr := &Interp{Cat: cat, Recycler: rc}
	for i := 0; i < 2; i++ {
		rec, err := ipr.Run(build())
		if err != nil {
			t.Fatal(err)
		}
		if rec[0].I != plain[0].I {
			t.Fatalf("recycled %d != plain %d", rec[0].I, plain[0].I)
		}
	}
}

func TestJoinRoutesThroughRadixForLargeInputs(t *testing.T) {
	// Above the threshold the interpreter must use the partitioned hash
	// join and produce the same multiset of pairs as the small-join path.
	n := 1 << 16
	lv := make([]int64, n)
	rv := make([]int64, n)
	for i := range lv {
		lv[i] = int64((i * 7) % 1000)
		rv[i] = int64((i * 13) % 1000)
	}
	cat := NewMapCatalog()
	cat.Put("l", bat.FromInts(lv))
	cat.Put("r", bat.FromInts(rv))
	b := NewBuilder()
	l := b.Emit("bind", CS("l"))
	r := b.Emit("bind", CS("r"))
	lo, ro := b.Emit2("join", V(l), V(r))
	cl := b.Emit("count", V(lo))
	cr := b.Emit("count", V(ro))
	b.Return([]string{"cl", "cr"}, cl, cr)
	out, err := (&Interp{Cat: cat}).Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	// Expected match count: per distinct value v, count_l(v)*count_r(v).
	lc := map[int64]int64{}
	rc := map[int64]int64{}
	for _, v := range lv {
		lc[v]++
	}
	for _, v := range rv {
		rc[v]++
	}
	var want int64
	for v, c := range lc {
		want += c * rc[v]
	}
	if out[0].I != want || out[1].I != want {
		t.Fatalf("join count = %d/%d, want %d", out[0].I, out[1].I, want)
	}
}

func TestScalarFloatOps(t *testing.T) {
	cat := NewMapCatalog()
	cat.Put("f", bat.FromFloats([]float64{1, 2, 4}))
	b := NewBuilder()
	f := b.Emit("bind", CS("f"))
	add := b.Emit("add_scalar_flt", V(f), CF(0.5))
	mul := b.Emit("mul_scalar_flt", V(f), CF(2))
	div := b.Emit("div_flt", V(mul), V(f))
	sc := b.Emit("div_scalar", CI(7), CF(2))
	b.Return([]string{"a", "m", "d", "s"}, add, mul, div, sc)
	out, err := (&Interp{Cat: cat}).Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if out[0].B.FloatAt(0) != 1.5 || out[1].B.FloatAt(2) != 8 || out[2].B.FloatAt(1) != 2 {
		t.Fatalf("float ops wrong: %v %v %v", out[0].B.Floats(), out[1].B.Floats(), out[2].B.Floats())
	}
	if out[3].F != 3.5 {
		t.Fatalf("div_scalar = %v", out[3].F)
	}
}

func TestDivScalarByZero(t *testing.T) {
	b := NewBuilder()
	d := b.Emit("div_scalar", CI(7), CI(0))
	b.Return([]string{"d"}, d)
	out, err := (&Interp{Cat: NewMapCatalog()}).Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if out[0].F != 0 {
		t.Fatalf("div by zero = %v, want 0", out[0].F)
	}
}

func TestCSEMergesMultiReturnInstr(t *testing.T) {
	cat := NewMapCatalog()
	cat.Put("l", bat.FromInts([]int64{1, 2}))
	cat.Put("r", bat.FromInts([]int64{2, 3}))
	b := NewBuilder()
	l := b.Emit("bind", CS("l"))
	r := b.Emit("bind", CS("r"))
	lo1, _ := b.Emit2("join", V(l), V(r))
	lo2, ro2 := b.Emit2("join", V(l), V(r)) // duplicate
	b.Return([]string{"a", "b", "c"}, lo1, lo2, ro2)
	p := CSE{}.Optimize(b.Program())
	njoin := 0
	for _, in := range p.Instrs {
		if in.Op == "join" {
			njoin++
		}
	}
	if njoin != 1 {
		t.Fatalf("joins after CSE = %d, want 1\n%s", njoin, p)
	}
	out, err := (&Interp{Cat: cat}).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].B != out[1].B {
		t.Fatal("CSE multi-ret results should alias")
	}
	if out[2].B.Len() != 1 {
		t.Fatalf("ro len = %d", out[2].B.Len())
	}
}
