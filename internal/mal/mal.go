// Package mal implements a miniature MonetDB Assembler Language: the
// intermediate plan language front-ends compile to (paper §3, Figure 1).
// A MAL program is a straight-line sequence of instructions over typed
// variables; each instruction maps to exactly one bulk BAT-algebra
// operator with zero degrees of freedom.
//
// The package also provides the middle optimizer tier of §3.1 — symbolic
// optimizer modules assembled into pipelines (common-subexpression
// elimination, dead-code elimination, recycler injection) — and the
// bottom-tier interpreter that dispatches into internal/batalg.
package mal

import (
	"fmt"
	"strings"

	"repro/internal/bat"
)

// Kind tags a runtime value.
type Kind uint8

// Value kinds.
const (
	KBAT Kind = iota
	KInt
	KFloat
	KStr
	KBool
	// KNil is the scalar SQL NULL: what an aggregate over zero (non-nil)
	// inputs returns.
	KNil
)

// Val is a runtime value: a BAT or a scalar.
type Val struct {
	Kind Kind
	B    *bat.BAT
	I    int64
	F    float64
	S    string
	Bool bool
}

// IntVal wraps an int constant.
func IntVal(v int64) Val { return Val{Kind: KInt, I: v} }

// FloatVal wraps a float constant.
func FloatVal(v float64) Val { return Val{Kind: KFloat, F: v} }

// StrVal wraps a string constant.
func StrVal(v string) Val { return Val{Kind: KStr, S: v} }

// BATVal wraps a BAT.
func BATVal(b *bat.BAT) Val { return Val{Kind: KBAT, B: b} }

// NilVal is the scalar NULL value.
func NilVal() Val { return Val{Kind: KNil} }

// String renders the value for diagnostics.
func (v Val) String() string {
	switch v.Kind {
	case KBAT:
		if v.B == nil {
			return "nil:bat"
		}
		return v.B.String()
	case KInt:
		return fmt.Sprintf("%d:int", v.I)
	case KFloat:
		return fmt.Sprintf("%g:flt", v.F)
	case KStr:
		return fmt.Sprintf("%q:str", v.S)
	case KBool:
		return fmt.Sprintf("%v:bit", v.Bool)
	case KNil:
		return "nil"
	}
	return "?"
}

// Arg is an instruction argument: a variable reference (Var >= 0), an
// inline constant, or a typed bind slot (Param > 0) — a placeholder a
// prepared statement fills in at execution time via Interp.Params. Bind
// slots let one compiled program be executed many times with different
// parameter values: the plan is compiled and optimized once, only the
// slot values change per execution.
type Arg struct {
	Var   int
	Const Val
	Param int // 1-based ? placeholder ordinal; 0 = not a bind slot
}

// V references variable i.
func V(i int) Arg { return Arg{Var: i} }

// C wraps a constant argument.
func C(v Val) Arg { return Arg{Var: -1, Const: v} }

// P is a typed bind slot for the i-th (1-based) statement parameter.
func P(i int) Arg { return Arg{Var: -1, Param: i} }

// CI wraps an int constant argument.
func CI(v int64) Arg { return C(IntVal(v)) }

// CS wraps a string constant argument.
func CS(v string) Arg { return C(StrVal(v)) }

// CF wraps a float constant argument.
func CF(v float64) Arg { return C(FloatVal(v)) }

// Instr is one MAL instruction: Rets := Op(Args).
type Instr struct {
	Op   string
	Args []Arg
	Rets []int
}

// String renders the instruction in MAL-ish syntax.
func (in Instr) String() string {
	var sb strings.Builder
	for i, r := range in.Rets {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "X_%d", r)
	}
	if len(in.Rets) > 0 {
		sb.WriteString(" := ")
	}
	sb.WriteString(in.Op)
	sb.WriteByte('(')
	for i, a := range in.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case a.Var >= 0:
			fmt.Fprintf(&sb, "X_%d", a.Var)
		case a.Param > 0:
			fmt.Fprintf(&sb, "?%d", a.Param)
		default:
			sb.WriteString(a.Const.String())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// Program is a straight-line MAL program. Results lists the variables the
// caller receives, ResultNames their external labels.
type Program struct {
	NVars       int
	Instrs      []Instr
	Results     []int
	ResultNames []string
}

// String renders the whole program.
func (p *Program) String() string {
	var sb strings.Builder
	for _, in := range p.Instrs {
		sb.WriteString("    ")
		sb.WriteString(in.String())
		sb.WriteString(";\n")
	}
	fmt.Fprintf(&sb, "    return %v;\n", p.Results)
	return sb.String()
}

// Builder incrementally constructs a Program.
type Builder struct {
	p Program
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return &Builder{} }

// NewVar allocates a fresh variable.
func (b *Builder) NewVar() int {
	v := b.p.NVars
	b.p.NVars++
	return v
}

// Emit appends an instruction returning one fresh variable, which it
// returns.
func (b *Builder) Emit(op string, args ...Arg) int {
	r := b.NewVar()
	b.p.Instrs = append(b.p.Instrs, Instr{Op: op, Args: args, Rets: []int{r}})
	return r
}

// Emit2 appends an instruction with two return variables.
func (b *Builder) Emit2(op string, args ...Arg) (int, int) {
	r1, r2 := b.NewVar(), b.NewVar()
	b.p.Instrs = append(b.p.Instrs, Instr{Op: op, Args: args, Rets: []int{r1, r2}})
	return r1, r2
}

// Emit3 appends an instruction with three return variables.
func (b *Builder) Emit3(op string, args ...Arg) (int, int, int) {
	r1, r2, r3 := b.NewVar(), b.NewVar(), b.NewVar()
	b.p.Instrs = append(b.p.Instrs, Instr{Op: op, Args: args, Rets: []int{r1, r2, r3}})
	return r1, r2, r3
}

// Return declares the program results.
func (b *Builder) Return(names []string, vars ...int) {
	b.p.Results = vars
	b.p.ResultNames = names
}

// Program finalizes and returns the built program.
func (b *Builder) Program() *Program { return &b.p }
