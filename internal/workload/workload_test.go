package workload

import (
	"sort"
	"testing"
)

func TestUniformIntsRange(t *testing.T) {
	vals := UniformInts(10000, 100, 1)
	for _, v := range vals {
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
	}
	// Deterministic per seed.
	again := UniformInts(10000, 100, 1)
	for i := range vals {
		if vals[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestSortedInts(t *testing.T) {
	vals := SortedInts(5000, 3, 2)
	if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
		t.Fatal("not sorted")
	}
}

func TestZipfSkew(t *testing.T) {
	vals := ZipfInts(50000, 1000, 1.5, 3)
	counts := map[int64]int{}
	for _, v := range vals {
		counts[v]++
	}
	if counts[0] < 10*counts[500] {
		t.Fatalf("zipf not skewed: c0=%d c500=%d", counts[0], counts[500])
	}
}

func TestClusteredInts(t *testing.T) {
	vals := ClusteredInts(1000, 4, 100, 4)
	distinct := map[int64]bool{}
	for _, v := range vals {
		distinct[v/1000] = true
	}
	// Values concentrate near 4 centers.
	if len(distinct) > 40 {
		t.Fatalf("too spread out: %d regions", len(distinct))
	}
}

func TestGenLineItemShape(t *testing.T) {
	li := GenLineItem(10000, 5)
	if li.Len() != 10000 {
		t.Fatalf("len = %d", li.Len())
	}
	for i := 0; i < li.Len(); i++ {
		if li.Quantity[i] < 1 || li.Quantity[i] > 50 {
			t.Fatalf("quantity out of range: %d", li.Quantity[i])
		}
		if li.Discount[i] < 0 || li.Discount[i] > 0.10 {
			t.Fatalf("discount out of range: %f", li.Discount[i])
		}
		if li.ShipDate[i] < 1 || li.ShipDate[i] > 2526 {
			t.Fatalf("shipdate out of range: %d", li.ShipDate[i])
		}
		if li.ReturnFlg[i] < 0 || li.ReturnFlg[i] > 2 {
			t.Fatalf("returnflag out of range: %d", li.ReturnFlg[i])
		}
	}
	if li.QuantityBAT().Len() != 10000 || li.ShipDateBAT().Len() != 10000 {
		t.Fatal("BAT views wrong")
	}
}

func TestSkyserverLogRepeats(t *testing.T) {
	log := SkyserverLog(2000, 4, 100000, 0.5, 6)
	if len(log) != 2000 {
		t.Fatalf("len = %d", len(log))
	}
	seen := map[RangeQuery]int{}
	for _, q := range log {
		seen[q]++
		if q.Col < 0 || q.Col >= 4 {
			t.Fatalf("bad col %d", q.Col)
		}
		if q.Hi <= q.Lo {
			t.Fatalf("bad range %v", q)
		}
	}
	// With 50% repeats, distinct queries must be well under the total.
	if len(seen) > 1400 {
		t.Fatalf("distinct = %d; repeats missing", len(seen))
	}
}

func TestCrackQueriesSelectivity(t *testing.T) {
	qs := CrackQueries(100, 1000000, 0.01, 0, 7)
	for _, q := range qs {
		if q.Hi-q.Lo != 10000 {
			t.Fatalf("width = %d", q.Hi-q.Lo)
		}
	}
	hot := CrackQueries(100, 1000000, 0.001, 0.1, 8)
	for _, q := range hot {
		if q.Lo > 100000 {
			t.Fatalf("hot query outside hot region: %v", q)
		}
	}
}
