// Package workload generates the synthetic datasets and query logs the
// experiment harness uses in place of the paper's benchmark data
// (substitutions documented in DESIGN.md §3): uniform/zipf/sorted integer
// columns, a TPC-H-lineitem-shaped table for the analytical queries, and a
// Skyserver-shaped query log (overlapping range predicates over few
// columns) for the recycler experiment.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/bat"
)

// UniformInts returns n uniform values in [0, domain).
func UniformInts(n int, domain int64, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63n(domain)
	}
	return out
}

// SortedInts returns n values with non-decreasing order and average gap g.
func SortedInts(n int, g int64, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	acc := int64(0)
	for i := range out {
		acc += r.Int63n(2*g + 1)
		out[i] = acc
	}
	return out
}

// ZipfInts returns n zipf-distributed values over [0, domain) with skew s
// (s > 1).
func ZipfInts(n int, domain uint64, s float64, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, s, 1, domain-1)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// ClusteredInts returns n values from k clusters with the given spread —
// the shape that makes PFOR shine and simple frames fail.
func ClusteredInts(n, k int, spread int64, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	centers := make([]int64, k)
	for i := range centers {
		centers[i] = r.Int63n(1 << 40)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = centers[r.Intn(k)] + r.Int63n(spread)
	}
	return out
}

// LineItem is a TPC-H-lineitem-shaped analytical table, decomposed by
// column (quantities scaled for laptop memory).
type LineItem struct {
	Quantity  []int64   // 1..50
	Price     []float64 // extendedprice
	Discount  []float64 // 0.00..0.10
	Tax       []float64 // 0.00..0.08
	ShipDate  []int64   // days since epoch-ish, 1..2526
	OrderKey  []int64
	ReturnFlg []int64 // 0..2 (the 3 return-flag classes)
	Status    []int64 // 0..1
}

// GenLineItem generates n rows.
func GenLineItem(n int, seed int64) *LineItem {
	r := rand.New(rand.NewSource(seed))
	li := &LineItem{
		Quantity:  make([]int64, n),
		Price:     make([]float64, n),
		Discount:  make([]float64, n),
		Tax:       make([]float64, n),
		ShipDate:  make([]int64, n),
		OrderKey:  make([]int64, n),
		ReturnFlg: make([]int64, n),
		Status:    make([]int64, n),
	}
	for i := 0; i < n; i++ {
		li.Quantity[i] = 1 + r.Int63n(50)
		li.Price[i] = 900 + 100*float64(r.Intn(1000))/10
		li.Discount[i] = float64(r.Intn(11)) / 100
		li.Tax[i] = float64(r.Intn(9)) / 100
		li.ShipDate[i] = 1 + r.Int63n(2526)
		li.OrderKey[i] = r.Int63n(int64(n) / 4)
		li.ReturnFlg[i] = r.Int63n(3)
		li.Status[i] = r.Int63n(2)
	}
	return li
}

// Len returns the row count.
func (li *LineItem) Len() int { return len(li.Quantity) }

// QuantityBAT returns the quantity column as a BAT.
func (li *LineItem) QuantityBAT() *bat.BAT { return bat.FromInts(li.Quantity) }

// ShipDateBAT returns the shipdate column as a BAT.
func (li *LineItem) ShipDateBAT() *bat.BAT { return bat.FromInts(li.ShipDate) }

// RangeQuery is one log entry: a range predicate over one column.
type RangeQuery struct {
	Col    int // column id
	Lo, Hi int64
}

// SkyserverLog generates a query log with the property the recycler
// exploits (§6.1, [19]): many queries share identical or overlapping range
// predicates over a small set of hot columns. repeatProb is the chance a
// query repeats a previously issued predicate exactly.
func SkyserverLog(n int, cols int, domain int64, repeatProb float64, seed int64) []RangeQuery {
	r := rand.New(rand.NewSource(seed))
	var log []RangeQuery
	for i := 0; i < n; i++ {
		if len(log) > 0 && r.Float64() < repeatProb {
			log = append(log, log[r.Intn(len(log))])
			continue
		}
		width := domain / 20
		lo := r.Int63n(domain - width)
		// Hot columns: zipf-ish choice biased to column 0.
		col := int(math.Floor(math.Pow(r.Float64(), 2) * float64(cols)))
		if col >= cols {
			col = cols - 1
		}
		log = append(log, RangeQuery{Col: col, Lo: lo, Hi: lo + width})
	}
	return log
}

// CrackQueries generates a sequence of range queries for the cracking
// experiment: random ranges of the given selectivity over [0, domain),
// optionally focused on a hot region (fraction of the domain).
func CrackQueries(n int, domain int64, selectivity float64, hotFrac float64, seed int64) []RangeQuery {
	r := rand.New(rand.NewSource(seed))
	width := int64(float64(domain) * selectivity)
	if width < 1 {
		width = 1
	}
	out := make([]RangeQuery, n)
	for i := range out {
		space := domain - width
		if hotFrac > 0 && hotFrac < 1 {
			space = int64(float64(domain)*hotFrac) - width
			if space < 1 {
				space = 1
			}
		}
		lo := r.Int63n(space)
		out[i] = RangeQuery{Lo: lo, Hi: lo + width}
	}
	return out
}
