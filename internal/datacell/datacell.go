// Package datacell implements the DataCell stream engine experiment (paper
// §6.2, [21, 23]): a data stream management solution built on the complete
// relational stack. Its salient feature is incremental *bulk*-event
// processing: incoming events are collected into baskets (bound to BATs)
// and each continuous query is evaluated once per basket with the bulk
// relational operators, instead of once per event. Predicate-based window
// processing comes for free from ordinary relational selection.
package datacell

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/batalg"
)

// Event is one stream tuple.
type Event struct {
	TS  int64 // logical timestamp (monotone)
	Key int64
	Val int64
}

// Query is a continuous aggregation: per tumbling window of Window events,
// emit the sum and count of Val over events with Lo <= Key < Hi.
type Query struct {
	ID     int
	Lo, Hi int64
	Window int
}

// WindowResult is one emitted window aggregate.
type WindowResult struct {
	QueryID int
	Window  int // window ordinal
	Sum     int64
	Count   int64
}

// Engine is the basket-based (bulk) stream engine.
type Engine struct {
	queries []Query
	basket  []Event
	// BasketSize is the number of events per processing batch; it must
	// divide (or be divided by) each query window for aligned emission, so
	// windows are required to be multiples of BasketSize.
	BasketSize int

	seen    int
	partial map[int]*WindowResult
	out     []WindowResult

	// reused basket column buffers
	keyBuf, valBuf []int64
}

// NewEngine returns a bulk engine with the given basket size.
func NewEngine(basketSize int, queries []Query) (*Engine, error) {
	if basketSize < 1 {
		return nil, fmt.Errorf("datacell: basket size %d", basketSize)
	}
	for _, q := range queries {
		if q.Window%basketSize != 0 {
			return nil, fmt.Errorf("datacell: query %d window %d not a multiple of basket %d",
				q.ID, q.Window, basketSize)
		}
	}
	return &Engine{queries: queries, BasketSize: basketSize, partial: map[int]*WindowResult{}}, nil
}

// Push appends an event; full baskets are processed in bulk.
func (e *Engine) Push(ev Event) {
	e.basket = append(e.basket, ev)
	if len(e.basket) >= e.BasketSize {
		e.processBasket()
	}
}

// Flush processes any buffered partial basket (ending the stream).
func (e *Engine) Flush() {
	if len(e.basket) > 0 {
		e.processBasket()
	}
	// Emit dangling partials.
	for _, q := range e.queries {
		if p, ok := e.partial[q.ID]; ok && p.Count >= 0 && e.seen%q.Window != 0 {
			e.out = append(e.out, *p)
			delete(e.partial, q.ID)
		}
	}
}

// processBasket evaluates every continuous query against the basket using
// the bulk BAT algebra, then folds results into window accumulators.
func (e *Engine) processBasket() {
	n := len(e.basket)
	if cap(e.keyBuf) < n {
		e.keyBuf = make([]int64, n)
		e.valBuf = make([]int64, n)
	}
	keys := e.keyBuf[:n]
	vals := e.valBuf[:n]
	for i, ev := range e.basket {
		keys[i] = ev.Key
		vals[i] = ev.Val
	}
	kb := bat.WrapInts(keys)
	vb := bat.WrapInts(vals)
	for _, q := range e.queries {
		cand := batalg.RangeSelect(kb, q.Lo, q.Hi, true, false)
		matched := batalg.LeftFetchJoin(cand, vb)
		sum := batalg.Sum(matched)
		cnt := int64(matched.Len())

		p, ok := e.partial[q.ID]
		if !ok {
			p = &WindowResult{QueryID: q.ID, Window: e.seen / q.Window}
			e.partial[q.ID] = p
		}
		p.Sum += sum
		p.Count += cnt
		if (e.seen+n)%q.Window == 0 {
			e.out = append(e.out, *p)
			delete(e.partial, q.ID)
		}
	}
	e.seen += n
	e.basket = e.basket[:0]
}

// Results returns the emitted windows so far.
func (e *Engine) Results() []WindowResult { return e.out }

// --- per-event baseline ---

// PerEventEngine processes every event against every query immediately:
// the tuple-at-a-time stream processing DataCell's basket model replaces.
type PerEventEngine struct {
	queries []Query
	seen    int
	partial map[int]*WindowResult
	out     []WindowResult
}

// NewPerEventEngine returns the baseline engine.
func NewPerEventEngine(queries []Query) *PerEventEngine {
	return &PerEventEngine{queries: queries, partial: map[int]*WindowResult{}}
}

// Push processes one event through every query.
func (e *PerEventEngine) Push(ev Event) {
	for _, q := range e.queries {
		p, ok := e.partial[q.ID]
		if !ok {
			p = &WindowResult{QueryID: q.ID, Window: e.seen / q.Window}
			e.partial[q.ID] = p
		}
		if ev.Key >= q.Lo && ev.Key < q.Hi {
			p.Sum += ev.Val
			p.Count++
		}
		if (e.seen+1)%q.Window == 0 {
			e.out = append(e.out, *p)
			delete(e.partial, q.ID)
		}
	}
	e.seen++
}

// Flush emits dangling partial windows.
func (e *PerEventEngine) Flush() {
	for _, q := range e.queries {
		if p, ok := e.partial[q.ID]; ok && e.seen%q.Window != 0 {
			e.out = append(e.out, *p)
			delete(e.partial, q.ID)
		}
	}
}

// Results returns the emitted windows so far.
func (e *PerEventEngine) Results() []WindowResult { return e.out }
