package datacell

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func genEvents(n int, seed int64) []Event {
	r := rand.New(rand.NewSource(seed))
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{TS: int64(i), Key: r.Int63n(100), Val: r.Int63n(1000)}
	}
	return out
}

func sortResults(rs []WindowResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].QueryID != rs[j].QueryID {
			return rs[i].QueryID < rs[j].QueryID
		}
		return rs[i].Window < rs[j].Window
	})
}

func TestBulkMatchesPerEvent(t *testing.T) {
	queries := []Query{
		{ID: 1, Lo: 0, Hi: 50, Window: 200},
		{ID: 2, Lo: 25, Hi: 75, Window: 400},
		{ID: 3, Lo: 90, Hi: 100, Window: 100},
	}
	events := genEvents(2000, 7)
	for _, basket := range []int{1, 10, 50, 100} {
		bulk, err := NewEngine(basket, queries)
		if err != nil {
			t.Fatal(err)
		}
		ref := NewPerEventEngine(queries)
		for _, ev := range events {
			bulk.Push(ev)
			ref.Push(ev)
		}
		bulk.Flush()
		ref.Flush()
		b, r := bulk.Results(), ref.Results()
		sortResults(b)
		sortResults(r)
		if !reflect.DeepEqual(b, r) {
			t.Fatalf("basket=%d: results differ\nbulk=%v\nref =%v", basket, b, r)
		}
	}
}

func TestWindowBoundaries(t *testing.T) {
	q := []Query{{ID: 1, Lo: 0, Hi: 100, Window: 4}}
	e, err := NewEngine(2, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		e.Push(Event{TS: int64(i), Key: 1, Val: 1})
	}
	e.Flush()
	rs := e.Results()
	if len(rs) != 2 || rs[0].Count != 4 || rs[1].Count != 4 {
		t.Fatalf("results = %v", rs)
	}
	if rs[0].Window != 0 || rs[1].Window != 1 {
		t.Fatalf("window ids = %v", rs)
	}
}

func TestPartialWindowFlushed(t *testing.T) {
	q := []Query{{ID: 1, Lo: 0, Hi: 100, Window: 10}}
	e, err := NewEngine(5, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		e.Push(Event{Key: 1, Val: 2})
	}
	e.Flush()
	rs := e.Results()
	if len(rs) != 2 {
		t.Fatalf("results = %v", rs)
	}
	if rs[1].Count != 3 || rs[1].Sum != 6 {
		t.Fatalf("partial = %v", rs[1])
	}
}

func TestMisalignedWindowRejected(t *testing.T) {
	if _, err := NewEngine(3, []Query{{ID: 1, Window: 10}}); err == nil {
		t.Fatal("expected window/basket alignment error")
	}
	if _, err := NewEngine(0, nil); err == nil {
		t.Fatal("expected basket size error")
	}
}

func TestPredicateWindows(t *testing.T) {
	// Only events within [lo,hi) count; others pass through the window
	// position but not the aggregate.
	q := []Query{{ID: 9, Lo: 10, Hi: 20, Window: 4}}
	e, _ := NewEngine(4, q)
	e.Push(Event{Key: 5, Val: 100})
	e.Push(Event{Key: 15, Val: 7})
	e.Push(Event{Key: 19, Val: 3})
	e.Push(Event{Key: 20, Val: 50})
	e.Flush()
	rs := e.Results()
	if len(rs) != 1 || rs[0].Sum != 10 || rs[0].Count != 2 {
		t.Fatalf("results = %v", rs)
	}
}

// Property: bulk and per-event engines agree for random workloads.
func TestQuickEnginesAgree(t *testing.T) {
	f := func(seed int64, basket8 uint8) bool {
		basket := int(basket8%20) + 1
		w := basket * 4
		queries := []Query{
			{ID: 1, Lo: 0, Hi: 60, Window: w},
			{ID: 2, Lo: 30, Hi: 90, Window: w * 2},
		}
		events := genEvents(basket*37, seed)
		bulk, err := NewEngine(basket, queries)
		if err != nil {
			return false
		}
		ref := NewPerEventEngine(queries)
		for _, ev := range events {
			bulk.Push(ev)
			ref.Push(ev)
		}
		bulk.Flush()
		ref.Flush()
		b, r := bulk.Results(), ref.Results()
		sortResults(b)
		sortResults(r)
		return reflect.DeepEqual(b, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPerEvent(b *testing.B) {
	queries := make([]Query, 8)
	for i := range queries {
		queries[i] = Query{ID: i, Lo: int64(i * 10), Hi: int64(i*10 + 30), Window: 1 << 16}
	}
	events := genEvents(1<<16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewPerEventEngine(queries)
		for _, ev := range events {
			e.Push(ev)
		}
		e.Flush()
	}
}

func BenchmarkBulkBasket4096(b *testing.B) {
	queries := make([]Query, 8)
	for i := range queries {
		queries[i] = Query{ID: i, Lo: int64(i * 10), Hi: int64(i*10 + 30), Window: 1 << 16}
	}
	events := genEvents(1<<16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := NewEngine(4096, queries)
		for _, ev := range events {
			e.Push(ev)
		}
		e.Flush()
	}
}
