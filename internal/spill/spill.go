// Package spill is the disk tier of out-of-core execution: when a
// query's memgov.Reservation denies an operator more memory under the
// Spill policy, the operator encodes its state (sort runs, grace-hash
// partitions) into temp files through this package and streams it back
// later. Files carry length-prefixed CRC-checked chunks of vector
// batches — the same framing discipline as the WAL and the wire
// protocol — so a torn or bit-flipped spill file is detected, not
// silently decoded into wrong query results.
//
// All I/O goes through wal.FS, so MemFS drives fault injection: an
// injected fsync failure or short write during a spill must fail ONLY
// the owning query with a typed ErrIO — the database is not involved
// and is never tainted — and the same query must succeed once the
// fault clears.
//
// Lifecycle: every file belongs to exactly one query's Scope, which
// registers the path BEFORE creation and removes all its files at
// query end (success or failure). A crash mid-spill can still orphan
// files; Sweep, called from engine.Open, removes anything matching the
// Prefix.
package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/vector"
	"repro/internal/wal"
)

// ErrIO is the typed spill failure: creating, writing, syncing,
// reading, or removing a spill file failed. It wraps the underlying
// cause; match with errors.Is. A query that dies with ErrIO leaves the
// engine fully serviceable — spill files hold derived data only.
var ErrIO = errors.New("spill: spill-file I/O failed")

// Prefix marks every spill file name; Sweep removes files bearing it.
const Prefix = "spill-"

// maxChunk bounds a decoded chunk payload so a corrupt length prefix
// cannot provoke a giant allocation.
const maxChunk = 1 << 30

// Stats is a point-in-time snapshot of a Manager's counters.
type Stats struct {
	Spills       int64 // spill files ever created
	LiveFiles    int64 // spill files currently on disk
	BytesWritten int64 // cumulative bytes written to spill files
}

// Manager owns one engine's spill directory: it names files uniquely,
// counts them, and hands out per-query Scopes. Safe for concurrent use.
type Manager struct {
	fs  wal.FS
	dir string

	seq    atomic.Uint64
	spills atomic.Int64
	live   atomic.Int64
	bytes  atomic.Int64
}

// NewManager returns a manager writing Prefix-named files under dir on
// fs. The directory must exist (engine.Open makes it).
func NewManager(fs wal.FS, dir string) *Manager {
	return &Manager{fs: fs, dir: dir}
}

// Stats returns the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Spills:       m.spills.Load(),
		LiveFiles:    m.live.Load(),
		BytesWritten: m.bytes.Load(),
	}
}

// Scope returns a fresh per-query scope.
func (m *Manager) Scope() *Scope {
	return &Scope{mgr: m}
}

// remove deletes one spill file, maintaining the live count.
func (m *Manager) remove(path string) error {
	if err := m.fs.Remove(path); err != nil {
		return fmt.Errorf("%w: remove %s: %w", ErrIO, filepath.Base(path), err)
	}
	m.live.Add(-1)
	return nil
}

// Scope tracks every spill file one query creates, so they can all be
// removed when the query ends — on success, error, or cancellation
// alike. Safe for concurrent use (parallel sort workers spill
// concurrently).
type Scope struct {
	mgr   *Manager
	mu    sync.Mutex
	paths []string
	done  bool
}

// Create opens a new spill file for writing. The label lands in the
// file name for debuggability; it must be short and path-safe.
func (s *Scope) Create(label string) (*Writer, error) {
	m := s.mgr
	name := fmt.Sprintf("%s%s-%d.run", Prefix, sanitize(label), m.seq.Add(1))
	path := filepath.Join(m.dir, name)
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: create %s: scope already cleaned up", ErrIO, name)
	}
	s.paths = append(s.paths, path)
	s.mu.Unlock()
	f, err := m.fs.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("%w: create %s: %w", ErrIO, name, err)
	}
	m.spills.Add(1)
	m.live.Add(1)
	return &Writer{mgr: m, path: path, f: f}, nil
}

// Cleanup removes every file the scope created. Idempotent; the first
// call wins. Removal failures are joined and reported (never ignored —
// leaked spill files eat the disk), but files already gone are fine.
func (s *Scope) Cleanup() error {
	s.mu.Lock()
	paths := s.paths
	s.paths, s.done = nil, true
	s.mu.Unlock()
	var errs []error
	for _, p := range paths {
		if err := s.mgr.remove(p); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// sanitize keeps labels path- and log-safe.
func sanitize(label string) string {
	if label == "" {
		return "x"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		}
		return '_'
	}, label)
}

// Writer encodes batches into one spill file. Not safe for concurrent
// use; each spilled run/partition has its own Writer. Any method that
// returns an error leaves the file handle closed — the path itself is
// removed later by the owning Scope.
type Writer struct {
	mgr  *Manager
	path string
	f    wal.File
	buf  []byte
	done bool
}

// WriteBatch appends one chunk holding b's qualifying rows (the
// selection vector is applied during encoding, so chunks are always
// dense).
func (w *Writer) WriteBatch(b *vector.Batch) error {
	if w.done {
		return fmt.Errorf("%w: write after Finish on %s", ErrIO, filepath.Base(w.path))
	}
	w.buf = encodeChunk(w.buf[:0], b)
	if _, err := w.f.Write(w.buf); err != nil {
		w.done = true
		// The write already failed the spill; the close error cannot
		// change the outcome but must not vanish — join it.
		return fmt.Errorf("%w: write %s: %w", ErrIO, filepath.Base(w.path), errors.Join(err, w.f.Close()))
	}
	w.mgr.bytes.Add(int64(len(w.buf)))
	return nil
}

// Finish syncs and closes the file and returns a handle the merge
// phase can re-open for streaming reads. The sync is what gives fault
// injection (MemFS.FailSyncsAfter) its hook, and it bounds how much
// dirty page cache a big spill can pin.
func (w *Writer) Finish() (*File, error) {
	if w.done {
		return nil, fmt.Errorf("%w: double Finish on %s", ErrIO, filepath.Base(w.path))
	}
	w.done = true
	if err := w.f.Sync(); err != nil {
		return nil, fmt.Errorf("%w: sync %s: %w", ErrIO, filepath.Base(w.path), errors.Join(err, w.f.Close()))
	}
	if err := w.f.Close(); err != nil {
		return nil, fmt.Errorf("%w: close %s: %w", ErrIO, filepath.Base(w.path), err)
	}
	return &File{mgr: w.mgr, path: w.path}, nil
}

// File is a finished, readable spill file.
type File struct {
	mgr  *Manager
	path string
}

// Path returns the file's full path (tests and logs).
func (f *File) Path() string { return f.path }

// Open returns a streaming reader over the file's chunks.
func (f *File) Open() (*Reader, error) {
	rc, err := f.mgr.fs.Open(f.path)
	if err != nil {
		return nil, fmt.Errorf("%w: open %s: %w", ErrIO, filepath.Base(f.path), err)
	}
	return &Reader{path: f.path, rc: rc}, nil
}

// Reader streams the batches of one spill file back in write order.
type Reader struct {
	path string
	rc   io.ReadCloser
	buf  []byte
	b    vector.Batch
}

// Next decodes the next chunk into a batch, or returns (nil, nil) at
// end of file. The batch is valid until the following Next call.
func (r *Reader) Next() (*vector.Batch, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.rc, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: read %s: torn chunk header: %w", ErrIO, filepath.Base(r.path), err)
	}
	size := binary.BigEndian.Uint32(hdr[0:4])
	crc := binary.BigEndian.Uint32(hdr[4:8])
	if size > maxChunk {
		return nil, fmt.Errorf("%w: read %s: chunk size %d exceeds limit", ErrIO, filepath.Base(r.path), size)
	}
	if cap(r.buf) < int(size) {
		r.buf = make([]byte, size)
	}
	r.buf = r.buf[:size]
	if _, err := io.ReadFull(r.rc, r.buf); err != nil {
		return nil, fmt.Errorf("%w: read %s: torn chunk payload: %w", ErrIO, filepath.Base(r.path), err)
	}
	if got := crc32.ChecksumIEEE(r.buf); got != crc {
		return nil, fmt.Errorf("%w: read %s: chunk CRC mismatch (stored %08x, computed %08x)", ErrIO, filepath.Base(r.path), crc, got)
	}
	if err := decodeChunk(r.buf, &r.b); err != nil {
		return nil, fmt.Errorf("%w: read %s: %w", ErrIO, filepath.Base(r.path), err)
	}
	return &r.b, nil
}

// Close releases the underlying file handle.
func (r *Reader) Close() error {
	if err := r.rc.Close(); err != nil {
		return fmt.Errorf("%w: close %s: %w", ErrIO, filepath.Base(r.path), err)
	}
	return nil
}

// Sweep removes every Prefix-named file under dir — the orphans a
// crash mid-spill leaves behind. Called from engine.Open before any
// query can spill; returns how many files it removed.
func Sweep(fs wal.FS, dir string) (int, error) {
	names, err := fs.List(dir)
	if err != nil {
		return 0, fmt.Errorf("%w: sweep %s: %w", ErrIO, dir, err)
	}
	removed := 0
	var errs []error
	for _, name := range names {
		if !strings.HasPrefix(name, Prefix) {
			continue
		}
		if err := fs.Remove(filepath.Join(dir, name)); err != nil {
			errs = append(errs, fmt.Errorf("%w: sweep %s: %w", ErrIO, name, err))
			continue
		}
		removed++
	}
	return removed, errors.Join(errs...)
}

// --- chunk codec ---
//
// chunk   = u32 payloadLen | u32 crc32(payload) | payload
// payload = u32 nrows | u16 ncols | ncols × u8 kind | ncols × coldata
// coldata = nrows × u64 (ints: two's complement; floats: IEEE bits)
//         | nrows × u8  (bools)
//
// Big-endian throughout, matching the repo's WAL and wire framing.

func encodeChunk(dst []byte, b *vector.Batch) []byte {
	rows := b.Rows()
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header backfilled below
	dst = binary.BigEndian.AppendUint32(dst, uint32(rows))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(b.Cols)))
	for i := range b.Cols {
		dst = append(dst, byte(b.Cols[i].Kind))
	}
	for i := range b.Cols {
		c := &b.Cols[i]
		switch c.Kind {
		case vector.KindInt:
			if b.Sel == nil {
				for _, v := range c.Ints[:b.N] {
					dst = binary.BigEndian.AppendUint64(dst, uint64(v))
				}
			} else {
				for _, idx := range b.Sel {
					dst = binary.BigEndian.AppendUint64(dst, uint64(c.Ints[idx]))
				}
			}
		case vector.KindFloat:
			if b.Sel == nil {
				for _, v := range c.Floats[:b.N] {
					dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
				}
			} else {
				for _, idx := range b.Sel {
					dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(c.Floats[idx]))
				}
			}
		case vector.KindBool:
			if b.Sel == nil {
				for _, v := range c.Bools[:b.N] {
					if v {
						dst = append(dst, 1)
					} else {
						dst = append(dst, 0)
					}
				}
			} else {
				for _, idx := range b.Sel {
					if c.Bools[idx] {
						dst = append(dst, 1)
					} else {
						dst = append(dst, 0)
					}
				}
			}
		}
	}
	payload := dst[8:]
	binary.BigEndian.PutUint32(dst[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[4:8], crc32.ChecksumIEEE(payload))
	return dst
}

// decodeChunk decodes a CRC-verified payload into b, reusing its
// column storage across calls.
func decodeChunk(p []byte, b *vector.Batch) error {
	if len(p) < 6 {
		return fmt.Errorf("chunk payload truncated (%d bytes)", len(p))
	}
	rows := int(binary.BigEndian.Uint32(p[0:4]))
	ncols := int(binary.BigEndian.Uint16(p[4:6]))
	p = p[6:]
	if len(p) < ncols {
		return fmt.Errorf("chunk kinds truncated")
	}
	if cap(b.Cols) < ncols {
		b.Cols = make([]vector.Col, ncols)
	}
	b.Cols = b.Cols[:ncols]
	b.N, b.Sel = rows, nil
	kinds := p[:ncols]
	p = p[ncols:]
	for i := 0; i < ncols; i++ {
		c := &b.Cols[i]
		c.Kind = vector.Kind(kinds[i])
		switch c.Kind {
		case vector.KindInt:
			if len(p) < 8*rows {
				return fmt.Errorf("chunk column %d truncated", i)
			}
			if cap(c.Ints) < rows {
				c.Ints = make([]int64, rows)
			}
			c.Ints, c.Floats, c.Bools = c.Ints[:rows], nil, nil
			for r := 0; r < rows; r++ {
				c.Ints[r] = int64(binary.BigEndian.Uint64(p[8*r:]))
			}
			p = p[8*rows:]
		case vector.KindFloat:
			if len(p) < 8*rows {
				return fmt.Errorf("chunk column %d truncated", i)
			}
			if cap(c.Floats) < rows {
				c.Floats = make([]float64, rows)
			}
			c.Floats, c.Ints, c.Bools = c.Floats[:rows], nil, nil
			for r := 0; r < rows; r++ {
				c.Floats[r] = math.Float64frombits(binary.BigEndian.Uint64(p[8*r:]))
			}
			p = p[8*rows:]
		case vector.KindBool:
			if len(p) < rows {
				return fmt.Errorf("chunk column %d truncated", i)
			}
			if cap(c.Bools) < rows {
				c.Bools = make([]bool, rows)
			}
			c.Bools, c.Ints, c.Floats = c.Bools[:rows], nil, nil
			for r := 0; r < rows; r++ {
				c.Bools[r] = p[r] != 0
			}
			p = p[rows:]
		default:
			return fmt.Errorf("chunk column %d has unknown kind %d", i, kinds[i])
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("chunk has %d trailing bytes", len(p))
	}
	return nil
}
