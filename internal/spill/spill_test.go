package spill

import (
	"errors"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/bat"
	"repro/internal/vector"
	"repro/internal/wal"
)

func testBatch() *vector.Batch {
	return &vector.Batch{
		N: 4,
		Cols: []vector.Col{
			{Kind: vector.KindInt, Ints: []int64{1, bat.NilInt, -7, 1 << 60}},
			{Kind: vector.KindFloat, Floats: []float64{1.5, math.NaN(), -0.0, 3.25}},
			{Kind: vector.KindBool, Bools: []bool{true, false, true, false}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	m := NewManager(fs, "d")
	sc := m.Scope()
	w, err := sc.Create("test")
	if err != nil {
		t.Fatal(err)
	}
	in := testBatch()
	if err := w.WriteBatch(in); err != nil {
		t.Fatal(err)
	}
	// Second chunk with a selection vector: must compact.
	sel := &vector.Batch{N: in.N, Sel: []int32{3, 0}, Cols: in.Cols}
	if err := w.WriteBatch(sel); err != nil {
		t.Fatal(err)
	}
	f, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 4 || b.Sel != nil || len(b.Cols) != 3 {
		t.Fatalf("chunk 1 shape: N=%d Sel=%v cols=%d", b.N, b.Sel, len(b.Cols))
	}
	for i, want := range []int64{1, bat.NilInt, -7, 1 << 60} {
		if b.Cols[0].Ints[i] != want {
			t.Fatalf("int[%d] = %d, want %d", i, b.Cols[0].Ints[i], want)
		}
	}
	if !math.IsNaN(b.Cols[1].Floats[1]) {
		t.Fatalf("NaN sentinel not preserved: %v", b.Cols[1].Floats[1])
	}
	if b.Cols[1].Floats[0] != 1.5 || b.Cols[1].Floats[3] != 3.25 {
		t.Fatalf("floats: %v", b.Cols[1].Floats)
	}
	if !b.Cols[2].Bools[0] || b.Cols[2].Bools[1] {
		t.Fatalf("bools: %v", b.Cols[2].Bools)
	}
	b, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 2 || b.Cols[0].Ints[0] != 1<<60 || b.Cols[0].Ints[1] != 1 {
		t.Fatalf("selected chunk: N=%d ints=%v", b.N, b.Cols[0].Ints)
	}
	if b, err = r.Next(); b != nil || err != nil {
		t.Fatalf("EOF: %v %v", b, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Spills != 1 || st.LiveFiles != 1 || st.BytesWritten == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := sc.Cleanup(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List("d")
	if len(names) != 0 {
		t.Fatalf("cleanup left files: %v", names)
	}
	if st := m.Stats(); st.LiveFiles != 0 {
		t.Fatalf("live after cleanup = %d", st.LiveFiles)
	}
}

func TestInjectedSyncFailure(t *testing.T) {
	fs := wal.NewMemFS()
	boom := errors.New("disk on fire")
	fs.FailSyncsAfter(0, boom)
	m := NewManager(fs, "d")
	sc := m.Scope()
	w, err := sc.Create("sync")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(testBatch()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); !errors.Is(err, ErrIO) || !errors.Is(err, boom) {
		t.Fatalf("Finish under injected fsync failure: %v", err)
	}
	if err := sc.Cleanup(); err != nil {
		t.Fatalf("cleanup after failed spill: %v", err)
	}
	fs.FailSyncsAfter(-1, nil)
	sc2 := m.Scope()
	w2, err := sc2.Create("retry")
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteBatch(testBatch()); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Finish(); err != nil {
		t.Fatalf("retry after fault cleared: %v", err)
	}
	if err := sc2.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedShortWrite(t *testing.T) {
	fs := wal.NewMemFS()
	m := NewManager(fs, "d")
	sc := m.Scope()
	w, err := sc.Create("short")
	if err != nil {
		t.Fatal(err)
	}
	fs.ShortWriteNext(3)
	if err := w.WriteBatch(testBatch()); !errors.Is(err, ErrIO) {
		t.Fatalf("WriteBatch under short write: %v", err)
	}
	if err := w.WriteBatch(testBatch()); !errors.Is(err, ErrIO) {
		t.Fatalf("write after failed write must fail: %v", err)
	}
	if err := sc.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestTornFileDetected(t *testing.T) {
	fs := wal.NewMemFS()
	m := NewManager(fs, "d")
	sc := m.Scope()
	w, _ := sc.Create("torn")
	if err := w.WriteBatch(testBatch()); err != nil {
		t.Fatal(err)
	}
	f, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk: the CRC must catch it.
	data, _ := fs.ReadFile(f.Path())
	data[len(data)-1] ^= 0xFF
	fs.Seed(f.Path(), data)
	r, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrIO) {
		t.Fatalf("corrupt chunk: %v", err)
	}
	// Truncated mid-payload: torn, not decoded.
	fs.Seed(f.Path(), data[:len(data)/2])
	r2, _ := f.Open()
	defer r2.Close()
	if _, err := r2.Next(); !errors.Is(err, ErrIO) {
		t.Fatalf("torn chunk: %v", err)
	}
}

func TestSweep(t *testing.T) {
	fs := wal.NewMemFS()
	fs.Seed(filepath.Join("d", Prefix+"orphan-1.run"), []byte{1, 2, 3})
	fs.Seed(filepath.Join("d", Prefix+"orphan-2.run"), []byte{4})
	fs.Seed(filepath.Join("d", "wal.log"), []byte{9})
	fs.Seed(filepath.Join("other", Prefix+"elsewhere.run"), []byte{5})
	n, err := Sweep(fs, "d")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("swept %d, want 2", n)
	}
	names, _ := fs.List("d")
	if len(names) != 1 || names[0] != "wal.log" {
		t.Fatalf("sweep must spare non-spill files: %v", names)
	}
	if names, _ := fs.List("other"); len(names) != 1 {
		t.Fatalf("sweep must stay in its dir: %v", names)
	}
}

func TestScopeCreateAfterCleanup(t *testing.T) {
	m := NewManager(wal.NewMemFS(), "d")
	sc := m.Scope()
	if err := sc.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Create("late"); !errors.Is(err, ErrIO) {
		t.Fatalf("create after cleanup: %v", err)
	}
}

func TestEmptyBatchChunk(t *testing.T) {
	m := NewManager(wal.NewMemFS(), "d")
	sc := m.Scope()
	w, _ := sc.Create("empty")
	if err := w.WriteBatch(&vector.Batch{N: 0, Cols: []vector.Col{{Kind: vector.KindInt, Ints: nil}}}); err != nil {
		t.Fatal(err)
	}
	f, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := f.Open()
	defer r.Close()
	b, err := r.Next()
	if err != nil || b == nil || b.N != 0 || len(b.Cols) != 1 {
		t.Fatalf("empty chunk: %v %v", b, err)
	}
}
