// Package volcano implements the classical tuple-at-a-time iterator
// execution model the paper contrasts MonetDB with (§3): every relational
// operator is an iterator with a Next() method returning one tuple; complex
// Boolean expressions are evaluated by a runtime expression interpreter
// sitting in the critical code path of Select and Join.
//
// The per-tuple method-call recursion and interface boxing here are not
// accidental inefficiency — they are the faithful model of the
// interpretation overhead and instruction-cache pressure that experiments
// E2 and E6 quantify against bulk (BAT) and vectorized (X100) execution.
package volcano

import (
	"errors"
	"fmt"
	"sort"
)

// Value is one attribute value: int64, float64, string or bool.
type Value any

// Row is one n-ary tuple (the NSM record).
type Row []Value

// Table is an NSM relation: a slice of rows plus a schema.
type Table struct {
	Name    string
	Columns []string
	Rows    []Row
}

// ColIndex returns the position of the named column, or an error.
func (t *Table) ColIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("volcano: no column %q in %s", name, t.Name)
}

// Iterator is the Volcano operator interface.
type Iterator interface {
	// Open prepares the iterator for a fresh pass.
	Open() error
	// Next produces the next tuple; ok is false at end of stream.
	Next() (row Row, ok bool, err error)
	// Close releases resources.
	Close() error
}

// --- interpreted expressions ---

// Expr is an interpreted scalar expression over a Row.
type Expr interface {
	Eval(Row) (Value, error)
}

// Col references the i-th attribute of the input row.
type Col struct{ Idx int }

// Eval implements Expr.
func (c Col) Eval(r Row) (Value, error) {
	if c.Idx < 0 || c.Idx >= len(r) {
		return nil, fmt.Errorf("volcano: column index %d out of range", c.Idx)
	}
	return r[c.Idx], nil
}

// Const is a literal.
type Const struct{ V Value }

// Eval implements Expr.
func (c Const) Eval(Row) (Value, error) { return c.V, nil }

// BinOpKind enumerates binary operators.
type BinOpKind uint8

// Binary operator kinds.
const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// BinOp applies an operator to two sub-expressions, dispatching on the
// runtime types of the operands — the expression interpreter whose cost
// the BAT algebra forsakes.
type BinOp struct {
	Op   BinOpKind
	L, R Expr
}

// Eval implements Expr.
func (b BinOp) Eval(r Row) (Value, error) {
	lv, err := b.L.Eval(r)
	if err != nil {
		return nil, err
	}
	rv, err := b.R.Eval(r)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case OpAnd, OpOr:
		lb, lok := lv.(bool)
		rb, rok := rv.(bool)
		if !lok || !rok {
			return nil, fmt.Errorf("volcano: AND/OR on non-bool %T,%T", lv, rv)
		}
		if b.Op == OpAnd {
			return lb && rb, nil
		}
		return lb || rb, nil
	}
	switch l := lv.(type) {
	case int64:
		rr, ok := rv.(int64)
		if !ok {
			if rf, ok := rv.(float64); ok {
				return evalFloat(b.Op, float64(l), rf)
			}
			return nil, typeErr(lv, rv)
		}
		return evalInt(b.Op, l, rr)
	case float64:
		switch rr := rv.(type) {
		case float64:
			return evalFloat(b.Op, l, rr)
		case int64:
			return evalFloat(b.Op, l, float64(rr))
		}
		return nil, typeErr(lv, rv)
	case string:
		rr, ok := rv.(string)
		if !ok {
			return nil, typeErr(lv, rv)
		}
		return evalStr(b.Op, l, rr)
	}
	return nil, typeErr(lv, rv)
}

func typeErr(l, r Value) error {
	return fmt.Errorf("volcano: type mismatch %T vs %T", l, r)
}

func evalInt(op BinOpKind, l, r int64) (Value, error) {
	switch op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return nil, errors.New("volcano: division by zero")
		}
		return l / r, nil
	case OpEq:
		return l == r, nil
	case OpNe:
		return l != r, nil
	case OpLt:
		return l < r, nil
	case OpLe:
		return l <= r, nil
	case OpGt:
		return l > r, nil
	case OpGe:
		return l >= r, nil
	}
	return nil, fmt.Errorf("volcano: bad int op %d", op)
}

func evalFloat(op BinOpKind, l, r float64) (Value, error) {
	switch op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return nil, errors.New("volcano: division by zero")
		}
		return l / r, nil
	case OpEq:
		return l == r, nil
	case OpNe:
		return l != r, nil
	case OpLt:
		return l < r, nil
	case OpLe:
		return l <= r, nil
	case OpGt:
		return l > r, nil
	case OpGe:
		return l >= r, nil
	}
	return nil, fmt.Errorf("volcano: bad float op %d", op)
}

func evalStr(op BinOpKind, l, r string) (Value, error) {
	switch op {
	case OpEq:
		return l == r, nil
	case OpNe:
		return l != r, nil
	case OpLt:
		return l < r, nil
	case OpLe:
		return l <= r, nil
	case OpGt:
		return l > r, nil
	case OpGe:
		return l >= r, nil
	}
	return nil, fmt.Errorf("volcano: bad string op %d", op)
}

// --- operators ---

// Scan iterates over a Table.
type Scan struct {
	T   *Table
	pos int
}

// NewScan returns a scan over t.
func NewScan(t *Table) *Scan { return &Scan{T: t} }

// Open implements Iterator.
func (s *Scan) Open() error { s.pos = 0; return nil }

// Next implements Iterator.
func (s *Scan) Next() (Row, bool, error) {
	if s.pos >= len(s.T.Rows) {
		return nil, false, nil
	}
	r := s.T.Rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Iterator.
func (s *Scan) Close() error { return nil }

// SelectOp filters its child by an interpreted predicate.
type SelectOp struct {
	Child Iterator
	Pred  Expr
}

// Open implements Iterator.
func (s *SelectOp) Open() error { return s.Child.Open() }

// Next implements Iterator.
func (s *SelectOp) Next() (Row, bool, error) {
	for {
		r, ok, err := s.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := s.Pred.Eval(r)
		if err != nil {
			return nil, false, err
		}
		if b, ok := v.(bool); ok && b {
			return r, true, nil
		}
	}
}

// Close implements Iterator.
func (s *SelectOp) Close() error { return s.Child.Close() }

// Project maps each input row through a list of expressions.
type Project struct {
	Child Iterator
	Exprs []Expr
}

// Open implements Iterator.
func (p *Project) Open() error { return p.Child.Open() }

// Next implements Iterator.
func (p *Project) Next() (Row, bool, error) {
	r, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i], err = e.Eval(r)
		if err != nil {
			return nil, false, err
		}
	}
	return out, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.Child.Close() }

// HashJoin joins left and right on equality of the keyed expressions,
// building on the right input. Output rows are left ++ right.
type HashJoin struct {
	Left, Right Iterator
	LKey, RKey  Expr

	table   map[Value][]Row
	pending []Row
	lrow    Row
}

// Open implements Iterator: builds the hash table from the right child.
func (j *HashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.table = make(map[Value][]Row)
	for {
		r, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k, err := j.RKey.Eval(r)
		if err != nil {
			return err
		}
		j.table[k] = append(j.table[k], r)
	}
	j.pending = nil
	return nil
}

// Next implements Iterator.
func (j *HashJoin) Next() (Row, bool, error) {
	for {
		if len(j.pending) > 0 {
			r := j.pending[0]
			j.pending = j.pending[1:]
			out := make(Row, 0, len(j.lrow)+len(r))
			out = append(out, j.lrow...)
			out = append(out, r...)
			return out, true, nil
		}
		l, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k, err := j.LKey.Eval(l)
		if err != nil {
			return nil, false, err
		}
		j.lrow = l
		j.pending = j.table[k]
	}
}

// Close implements Iterator.
func (j *HashJoin) Close() error {
	if err := j.Left.Close(); err != nil {
		return err
	}
	return j.Right.Close()
}

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate function kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
)

// AggSpec is one aggregate over an input expression.
type AggSpec struct {
	Kind AggKind
	Arg  Expr // ignored for AggCount
}

// HashAgg groups by the key expressions and computes the aggregates.
// Output rows are keys ++ aggregates, in first-seen group order.
type HashAgg struct {
	Child Iterator
	Keys  []Expr
	Aggs  []AggSpec

	out []Row
	pos int
}

// Open implements Iterator: drains the child and materializes groups.
func (a *HashAgg) Open() error {
	if err := a.Child.Open(); err != nil {
		return err
	}
	type group struct {
		key  Row
		accs []Value
	}
	idx := make(map[string]int)
	var groups []*group
	for {
		r, ok, err := a.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		key := make(Row, len(a.Keys))
		for i, k := range a.Keys {
			key[i], err = k.Eval(r)
			if err != nil {
				return err
			}
		}
		ks := fmt.Sprintf("%v", []Value(key))
		gi, ok := idx[ks]
		if !ok {
			gi = len(groups)
			idx[ks] = gi
			groups = append(groups, &group{key: key, accs: make([]Value, len(a.Aggs))})
		}
		g := groups[gi]
		for i, spec := range a.Aggs {
			var v Value
			if spec.Kind != AggCount {
				v, err = spec.Arg.Eval(r)
				if err != nil {
					return err
				}
			}
			g.accs[i], err = foldAgg(spec.Kind, g.accs[i], v)
			if err != nil {
				return err
			}
		}
	}
	a.out = a.out[:0]
	for _, g := range groups {
		row := make(Row, 0, len(g.key)+len(g.accs))
		row = append(row, g.key...)
		for i, acc := range g.accs {
			if acc == nil && a.Aggs[i].Kind == AggCount {
				acc = int64(0)
			}
			row = append(row, acc)
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

func foldAgg(kind AggKind, acc Value, v Value) (Value, error) {
	switch kind {
	case AggCount:
		if acc == nil {
			return int64(1), nil
		}
		return acc.(int64) + 1, nil
	case AggSum:
		if acc == nil {
			return v, nil
		}
		switch a := acc.(type) {
		case int64:
			return a + v.(int64), nil
		case float64:
			return a + v.(float64), nil
		}
	case AggMin:
		if acc == nil {
			return v, nil
		}
		if less(v, acc) {
			return v, nil
		}
		return acc, nil
	case AggMax:
		if acc == nil {
			return v, nil
		}
		if less(acc, v) {
			return v, nil
		}
		return acc, nil
	}
	return nil, fmt.Errorf("volcano: bad aggregate fold %d over %T", kind, acc)
}

func less(a, b Value) bool {
	switch x := a.(type) {
	case int64:
		return x < b.(int64)
	case float64:
		return x < b.(float64)
	case string:
		return x < b.(string)
	}
	return false
}

// Next implements Iterator.
func (a *HashAgg) Next() (Row, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, true, nil
}

// Close implements Iterator.
func (a *HashAgg) Close() error { return a.Child.Close() }

// SortOp materializes and sorts its input by the key expression.
type SortOp struct {
	Child Iterator
	Key   Expr
	Desc  bool

	out []Row
	pos int
}

// Open implements Iterator.
func (s *SortOp) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	s.out = s.out[:0]
	keys := []Value{}
	for {
		r, ok, err := s.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k, err := s.Key.Eval(r)
		if err != nil {
			return err
		}
		s.out = append(s.out, r)
		keys = append(keys, k)
	}
	idx := make([]int, len(s.out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		if s.Desc {
			return less(keys[idx[j]], keys[idx[i]])
		}
		return less(keys[idx[i]], keys[idx[j]])
	})
	sorted := make([]Row, len(s.out))
	for i, p := range idx {
		sorted[i] = s.out[p]
	}
	s.out = sorted
	s.pos = 0
	return nil
}

// Next implements Iterator.
func (s *SortOp) Next() (Row, bool, error) {
	if s.pos >= len(s.out) {
		return nil, false, nil
	}
	r := s.out[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Iterator.
func (s *SortOp) Close() error { return s.Child.Close() }

// Limit passes through at most N rows.
type Limit struct {
	Child Iterator
	N     int
	seen  int
}

// Open implements Iterator.
func (l *Limit) Open() error { l.seen = 0; return l.Child.Open() }

// Next implements Iterator.
func (l *Limit) Next() (Row, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	r, ok, err := l.Child.Next()
	if ok {
		l.seen++
	}
	return r, ok, err
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.Child.Close() }

// Drain runs an iterator tree to completion and returns all rows.
func Drain(it Iterator) ([]Row, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}
