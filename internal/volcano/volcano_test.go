package volcano

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bat"
	"repro/internal/batalg"
)

func peopleTable() *Table {
	return &Table{
		Name:    "people",
		Columns: []string{"name", "age"},
		Rows: []Row{
			{"John Wayne", int64(1907)},
			{"Roger Moore", int64(1927)},
			{"Bob Fosse", int64(1927)},
			{"Will Smith", int64(1968)},
		},
	}
}

func TestScanAll(t *testing.T) {
	rows, err := Drain(NewScan(peopleTable()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestSelectInterpretedPredicate(t *testing.T) {
	// WHERE age = 1927 (the Figure 1 query, tuple-at-a-time style)
	it := &SelectOp{
		Child: NewScan(peopleTable()),
		Pred:  BinOp{Op: OpEq, L: Col{1}, R: Const{int64(1927)}},
	}
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "Roger Moore" || rows[1][0] != "Bob Fosse" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSelectComplexPredicate(t *testing.T) {
	// WHERE age > 1910 AND age < 1950
	it := &SelectOp{
		Child: NewScan(peopleTable()),
		Pred: BinOp{Op: OpAnd,
			L: BinOp{Op: OpGt, L: Col{1}, R: Const{int64(1910)}},
			R: BinOp{Op: OpLt, L: Col{1}, R: Const{int64(1950)}},
		},
	}
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestProjectArithmetic(t *testing.T) {
	it := &Project{
		Child: NewScan(peopleTable()),
		Exprs: []Expr{BinOp{Op: OpAdd, L: Col{1}, R: Const{int64(100)}}},
	}
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != int64(2007) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExprTypeMismatch(t *testing.T) {
	it := &SelectOp{
		Child: NewScan(peopleTable()),
		Pred:  BinOp{Op: OpEq, L: Col{0}, R: Const{int64(3)}},
	}
	if _, err := Drain(it); err == nil {
		t.Fatal("expected type error")
	}
}

func TestDivByZero(t *testing.T) {
	it := &Project{
		Child: NewScan(peopleTable()),
		Exprs: []Expr{BinOp{Op: OpDiv, L: Col{1}, R: Const{int64(0)}}},
	}
	if _, err := Drain(it); err == nil {
		t.Fatal("expected division error")
	}
}

func TestMixedIntFloatCompare(t *testing.T) {
	tab := &Table{Columns: []string{"x"}, Rows: []Row{{1.5}, {2.5}}}
	it := &SelectOp{Child: NewScan(tab), Pred: BinOp{Op: OpGt, L: Col{0}, R: Const{int64(2)}}}
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != 2.5 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashJoin(t *testing.T) {
	orders := &Table{Columns: []string{"oid", "cust"}, Rows: []Row{
		{int64(1), int64(10)}, {int64(2), int64(20)}, {int64(3), int64(10)},
	}}
	custs := &Table{Columns: []string{"cid", "name"}, Rows: []Row{
		{int64(10), "ann"}, {int64(20), "bob"},
	}}
	j := &HashJoin{
		Left: NewScan(orders), Right: NewScan(custs),
		LKey: Col{1}, RKey: Col{0},
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][3] != "ann" || rows[1][3] != "bob" || rows[2][3] != "ann" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashJoinEmptyBuild(t *testing.T) {
	l := &Table{Columns: []string{"a"}, Rows: []Row{{int64(1)}}}
	r := &Table{Columns: []string{"b"}, Rows: nil}
	rows, err := Drain(&HashJoin{Left: NewScan(l), Right: NewScan(r), LKey: Col{0}, RKey: Col{0}})
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

func TestHashAgg(t *testing.T) {
	tab := &Table{Columns: []string{"k", "v"}, Rows: []Row{
		{int64(1), int64(10)}, {int64(2), int64(20)}, {int64(1), int64(30)},
	}}
	a := &HashAgg{
		Child: NewScan(tab),
		Keys:  []Expr{Col{0}},
		Aggs: []AggSpec{
			{Kind: AggSum, Arg: Col{1}},
			{Kind: AggCount},
			{Kind: AggMin, Arg: Col{1}},
			{Kind: AggMax, Arg: Col{1}},
		},
	}
	rows, err := Drain(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{
		{int64(1), int64(40), int64(2), int64(10), int64(30)},
		{int64(2), int64(20), int64(1), int64(20), int64(20)},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
}

func TestHashAggNoKeys(t *testing.T) {
	tab := &Table{Columns: []string{"v"}, Rows: []Row{{int64(1)}, {int64(2)}}}
	a := &HashAgg{Child: NewScan(tab), Aggs: []AggSpec{{Kind: AggSum, Arg: Col{0}}}}
	rows, err := Drain(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != int64(3) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSortAscDesc(t *testing.T) {
	tab := &Table{Columns: []string{"v"}, Rows: []Row{{int64(3)}, {int64(1)}, {int64(2)}}}
	asc, err := Drain(&SortOp{Child: NewScan(tab), Key: Col{0}})
	if err != nil {
		t.Fatal(err)
	}
	if asc[0][0] != int64(1) || asc[2][0] != int64(3) {
		t.Fatalf("asc = %v", asc)
	}
	desc, err := Drain(&SortOp{Child: NewScan(tab), Key: Col{0}, Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if desc[0][0] != int64(3) {
		t.Fatalf("desc = %v", desc)
	}
}

func TestLimit(t *testing.T) {
	tab := &Table{Columns: []string{"v"}, Rows: []Row{{int64(1)}, {int64(2)}, {int64(3)}}}
	rows, err := Drain(&Limit{Child: NewScan(tab), N: 2})
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

func TestReOpenRestarts(t *testing.T) {
	sc := NewScan(peopleTable())
	if _, err := Drain(sc); err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(sc)
	if err != nil || len(rows) != 4 {
		t.Fatalf("second drain rows=%d err=%v", len(rows), err)
	}
}

// TestAgreesWithBATAlgebra cross-checks the two engines on the same query:
// SELECT sum(v) FROM t WHERE v >= 100 AND v < 900.
func TestAgreesWithBATAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	n := 10000
	vals := make([]int64, n)
	rows := make([]Row, n)
	for i := range vals {
		vals[i] = r.Int63n(1000)
		rows[i] = Row{vals[i]}
	}
	// Volcano plan
	it := &HashAgg{
		Child: &SelectOp{
			Child: NewScan(&Table{Columns: []string{"v"}, Rows: rows}),
			Pred: BinOp{Op: OpAnd,
				L: BinOp{Op: OpGe, L: Col{0}, R: Const{int64(100)}},
				R: BinOp{Op: OpLt, L: Col{0}, R: Const{int64(900)}},
			},
		},
		Aggs: []AggSpec{{Kind: AggSum, Arg: Col{0}}},
	}
	got, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	// BAT plan
	b := bat.FromInts(vals)
	cand := batalg.RangeSelect(b, 100, 900, true, false)
	want := batalg.Sum(batalg.LeftFetchJoin(cand, b))
	if got[0][0] != want {
		t.Fatalf("volcano %v != bat %v", got[0][0], want)
	}
}

// BenchmarkVolcanoSelectSum is the E2 baseline measurement.
func BenchmarkVolcanoSelectSum1M(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 1 << 20
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{r.Int63n(1000)}
	}
	tab := &Table{Columns: []string{"v"}, Rows: rows}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := &HashAgg{
			Child: &SelectOp{
				Child: NewScan(tab),
				Pred:  BinOp{Op: OpLt, L: Col{0}, R: Const{int64(500)}},
			},
			Aggs: []AggSpec{{Kind: AggSum, Arg: Col{0}}},
		}
		if _, err := Drain(it); err != nil {
			b.Fatal(err)
		}
	}
}
