package cyclotron

import "testing"

// paperCfg: RDMA hop is cheap; the software messaging stack is the
// expensive part ("TCP/IP ... known for its high overhead", §6.2).
var paperCfg = Config{
	Nodes:      16,
	Partitions: 64,
	HopNS:      500,
	MsgNS:      20000,
	TransferNS: 4000,
	ProcessNS:  1000,
}

func TestAllQueriesComplete(t *testing.T) {
	for _, run := range []func(Config, int, float64) Stats{RunCyclotron, RunRequestResponse} {
		st := run(paperCfg, 5000, 1)
		if st.Completed != 5000 {
			t.Fatalf("completed = %d", st.Completed)
		}
		if st.SimNS <= 0 || st.Throughput <= 0 {
			t.Fatalf("degenerate stats: %+v", st)
		}
	}
}

func TestCyclotronThroughputBeatsRequestResponse(t *testing.T) {
	cy := RunCyclotron(paperCfg, 20000, 1)
	rr := RunRequestResponse(paperCfg, 20000, 1)
	if cy.Throughput <= rr.Throughput {
		t.Fatalf("cyclotron %.1f q/ms should beat request/response %.1f q/ms",
			cy.Throughput, rr.Throughput)
	}
}

func TestSkewHurtsRequestResponseMore(t *testing.T) {
	// Under heavy skew the hot partition's owner serializes nearly all
	// requests; the rotating hot-set keeps serving them every revolution.
	rrUniform := RunRequestResponse(paperCfg, 20000, 0)
	rrSkew := RunRequestResponse(paperCfg, 20000, 3)
	cySkew := RunCyclotron(paperCfg, 20000, 3)
	if rrSkew.Throughput >= rrUniform.Throughput {
		t.Fatalf("skew should hurt request/response: %.1f vs %.1f",
			rrSkew.Throughput, rrUniform.Throughput)
	}
	if cySkew.Throughput <= rrSkew.Throughput {
		t.Fatalf("cyclotron under skew %.1f should beat request/response %.1f",
			cySkew.Throughput, rrSkew.Throughput)
	}
}

func TestRingRotationBoundsWait(t *testing.T) {
	// A query waits at most one full revolution in the cyclotron.
	st := RunCyclotron(paperCfg, 100, 1)
	revolution := float64(paperCfg.Nodes) * (paperCfg.HopNS + paperCfg.TransferNS)
	if st.AvgWaitNS > revolution {
		t.Fatalf("avg wait %.0f exceeds one revolution %.0f", st.AvgWaitNS, revolution)
	}
}

func TestGenQueriesSkewShape(t *testing.T) {
	qs := genQueries(paperCfg, 10000, 3)
	counts := make([]int, paperCfg.Partitions)
	for _, q := range qs {
		counts[q.part]++
	}
	if counts[0] < counts[paperCfg.Partitions-1] {
		t.Fatalf("zipf shape broken: hot=%d cold=%d", counts[0], counts[paperCfg.Partitions-1])
	}
	// Uniform: roughly flat.
	qs = genQueries(paperCfg, 10000, 0)
	counts = make([]int, paperCfg.Partitions)
	for _, q := range qs {
		counts[q.part]++
	}
	if counts[0] > 3*counts[paperCfg.Partitions-1] {
		t.Fatalf("uniform shape broken: %d vs %d", counts[0], counts[paperCfg.Partitions-1])
	}
}

func TestMoreNodesScaleCyclotron(t *testing.T) {
	small := paperCfg
	small.Nodes = 4
	big := paperCfg
	big.Nodes = 32
	s := RunCyclotron(small, 20000, 1)
	b := RunCyclotron(big, 20000, 1)
	if b.Throughput <= s.Throughput {
		t.Fatalf("32 nodes (%.1f) should out-throughput 4 nodes (%.1f)",
			b.Throughput, s.Throughput)
	}
}

func BenchmarkCyclotron(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunCyclotron(paperCfg, 10000, 1)
	}
}

func BenchmarkRequestResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunRequestResponse(paperCfg, 10000, 1)
	}
}
