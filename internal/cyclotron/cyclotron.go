// Package cyclotron simulates the DataCyclotron architecture (paper §6.2,
// [13]): cluster nodes connected in a ring by Remote-DMA links, with the
// database hot-set (its partitions) continuously floating around the ring.
// A node answers a query the moment the partition it needs passes by; no
// CPU-mediated request/response round trips are involved.
//
// No RDMA cluster is available here, so both architectures run on a
// discrete-event simulation (DESIGN.md §3) with identical link parameters:
// HopNS to forward a partition to the ring neighbour (RDMA write), and for
// the baseline a request/response exchange costing 2x the software
// messaging overhead MsgNS plus the transfer.
package cyclotron

// Config describes the cluster and workload.
type Config struct {
	Nodes      int
	Partitions int     // hot-set partitions circulating the ring
	HopNS      float64 // RDMA forward of one partition to the neighbour
	MsgNS      float64 // software (TCP-stack) overhead per message
	TransferNS float64 // moving one partition over a link, payload cost
	ProcessNS  float64 // query processing once data is local
}

// Stats reports one simulated run.
type Stats struct {
	Completed  int
	SimNS      float64 // simulated makespan
	AvgWaitNS  float64 // mean time a query waited for its data
	Throughput float64 // queries per simulated ms
}

// query is one pending request: issued at a node, needs a partition.
type query struct {
	node, part int
	issueNS    float64
}

// genQueries builds nQueries zipf-skewed partition requests spread
// round-robin over nodes, all issued at time 0 (a closed burst — the
// throughput shape is what E14 compares).
func genQueries(cfg Config, nQueries int, zipfSkew float64) []query {
	qs := make([]query, nQueries)
	// Deterministic zipf-ish: rank r gets weight 1/(r+1)^skew.
	weights := make([]float64, cfg.Partitions)
	var total float64
	for r := range weights {
		w := 1.0
		for s := zipfSkew; s >= 1; s-- {
			w /= float64(r + 1)
		}
		weights[r] = w
		total += w
	}
	// Cumulative selection using a deterministic low-discrepancy sequence.
	for i := range qs {
		u := float64((i*2654435761)%1000003) / 1000003 * total
		p := 0
		for acc := weights[0]; acc < u && p < cfg.Partitions-1; {
			p++
			acc += weights[p]
		}
		qs[i] = query{node: i % cfg.Nodes, part: p}
	}
	return qs
}

// RunCyclotron simulates the floating hot-set: partitions are spread over
// the ring and advance one hop every HopNS+TransferNS (pipelined: all
// links move in parallel). A node serves its pending queries for a
// partition during the rotation slot in which the partition is local.
func RunCyclotron(cfg Config, nQueries int, zipfSkew float64) Stats {
	qs := genQueries(cfg, nQueries, zipfSkew)
	// pending[node][part] = queries waiting
	pending := make([]map[int][]int, cfg.Nodes)
	for n := range pending {
		pending[n] = map[int][]int{}
	}
	for i, q := range qs {
		pending[q.node][q.part] = append(pending[q.node][q.part], i)
	}
	loc := make([]int, cfg.Partitions) // partition -> node
	for p := range loc {
		loc[p] = p % cfg.Nodes
	}
	slotNS := cfg.HopNS + cfg.TransferNS
	var clock, waitSum float64
	done := 0
	for done < nQueries {
		// Serve everything local this slot; processing overlaps rotation
		// per node (nodes work in parallel), so the slot cost is the max
		// of rotation and the busiest node's processing.
		nodeBusy := make([]float64, cfg.Nodes)
		for p := 0; p < cfg.Partitions; p++ {
			n := loc[p]
			if ids := pending[n][p]; len(ids) > 0 {
				for range ids {
					waitSum += clock
					done++
				}
				nodeBusy[n] += float64(len(ids)) * cfg.ProcessNS
				delete(pending[n], p)
			}
		}
		busiest := 0.0
		for _, b := range nodeBusy {
			if b > busiest {
				busiest = b
			}
		}
		step := slotNS
		if busiest > step {
			step = busiest
		}
		clock += step
		// Rotate all partitions one hop (parallel RDMA writes).
		for p := range loc {
			loc[p] = (loc[p] + 1) % cfg.Nodes
		}
	}
	return stats(done, clock, waitSum)
}

// RunRequestResponse simulates the baseline: each query's node requests the
// partition from its (static) owner over the software messaging stack.
// Each owner serves requests serially (request + transfer + response per
// query); different owners work in parallel.
func RunRequestResponse(cfg Config, nQueries int, zipfSkew float64) Stats {
	qs := genQueries(cfg, nQueries, zipfSkew)
	ownerClock := make([]float64, cfg.Nodes)
	var waitSum, makespan float64
	perQuery := 2*cfg.MsgNS + cfg.TransferNS // request msg + response msg + payload
	for _, q := range qs {
		owner := q.part % cfg.Nodes
		start := ownerClock[owner]
		finish := start + perQuery + cfg.ProcessNS
		ownerClock[owner] = start + perQuery // owner freed after transfer
		waitSum += start + perQuery
		if finish > makespan {
			makespan = finish
		}
	}
	return stats(len(qs), makespan, waitSum)
}

func stats(done int, clock, waitSum float64) Stats {
	s := Stats{Completed: done, SimNS: clock}
	if done > 0 {
		s.AvgWaitNS = waitSum / float64(done)
	}
	if clock > 0 {
		s.Throughput = float64(done) / (clock / 1e6)
	}
	return s
}
