package server

// Serving-layer tests for PR 9's out-of-core and timeout features:
// statement timeouts (server default and per-session SetTimeout
// override), the reject-vs-spill memory policy, and the stats frame's
// plan-cache and spill counters. Queries are held deterministically
// with the config's test gate where timing matters.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/engine"
)

// seedScrambled loads n int rows in a scrambled order so ORDER BY has
// real work to do. Seeding goes through the engine directly — loading
// over the wire would fight the armed test gate and the tiny budgets.
func seedScrambled(t *testing.T, db *engine.DB, table string, n int) {
	t.Helper()
	ctx := context.Background()
	if _, err := db.Exec(ctx, fmt.Sprintf(`CREATE TABLE %s (a INT)`, table)); err != nil {
		t.Fatal(err)
	}
	const chunk = 1000
	for base := 0; base < n; base += chunk {
		var sb strings.Builder
		fmt.Fprintf(&sb, `INSERT INTO %s VALUES `, table)
		for j := 0; j < chunk && base+j < n; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d)", (base+j)*7919%n)
		}
		if _, err := db.Exec(ctx, sb.String()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStmtTimeoutDefault: with a server-wide statement timeout, a query
// stuck past it fails with ErrTimeout (not ErrCanceled), and the
// session keeps serving afterwards.
func TestStmtTimeoutDefault(t *testing.T) {
	ctx := context.Background()
	gate := make(chan struct{})
	addr, _, db, _ := startServer(t, "", func(c *Config) {
		c.StmtTimeout = 500 * time.Millisecond
		c.testGate = gate
	})
	if _, err := db.Exec(ctx, `CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, `INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr)

	// The gate holds the admitted query until its deadline fires.
	_, err := c.Query(ctx, `SELECT sum(a) AS s FROM t`)
	if !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("stuck query err = %v, want ErrTimeout", err)
	}
	if errors.Is(err, client.ErrCanceled) {
		t.Fatalf("timeout must not read as plain cancellation: %v", err)
	}

	// Released, the same session's next query completes inside the
	// timeout.
	close(gate)
	rows, err := c.Query(ctx, `SELECT sum(a) AS s FROM t`)
	if err != nil {
		t.Fatalf("post-timeout query: %v", err)
	}
	var s int64
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	if err := rows.Scan(&s); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if s != 6 {
		t.Fatalf("sum = %d, want 6", s)
	}
}

// TestSetTimeoutOverride: a session's SetTimeout takes precedence over
// the server default, and SetTimeout(0) reverts to it.
func TestSetTimeoutOverride(t *testing.T) {
	ctx := context.Background()
	gate := make(chan struct{})
	addr, _, db, _ := startServer(t, "", func(c *Config) {
		c.StmtTimeout = time.Hour // far beyond the test's patience
		c.testGate = gate
	})
	if _, err := db.Exec(ctx, `CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, `INSERT INTO t VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr)

	// Only the 300ms override can explain a timeout here — the server
	// default is an hour.
	if err := c.SetTimeout(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, err := c.Query(ctx, `SELECT a FROM t`)
	if !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("overridden query err = %v, want ErrTimeout", err)
	}

	close(gate)
	if err := c.SetTimeout(0); err != nil { // back to the 1h default
		t.Fatal(err)
	}
	rows, err := c.Query(ctx, `SELECT a FROM t`)
	if err != nil {
		t.Fatalf("query after clearing override: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("rows = %d, want 1", n)
	}
}

// TestMemPolicySpill: the same over-budget ORDER BY that the reject
// policy refuses at the door completes under the spill policy by
// degrading to disk, and the stats frame shows the spill activity.
func TestMemPolicySpill(t *testing.T) {
	ctx := context.Background()
	const budget = 128 << 10
	const rows = 30000 // ~240 KB of sort state, well past the budget

	// Spill side: the static admission check is skipped; the engine's
	// ledger over-grants and the sort goes external.
	spillOpts := []engine.Option{engine.WithMemBudget(budget), engine.WithSpill(t.TempDir())}
	addr, srv, db, _ := startServerWith(t, spillOpts, func(c *Config) {
		c.MemBudget = budget
		c.MemPolicy = "spill"
	})
	seedScrambled(t, db, "big", rows)
	c := dial(t, addr)

	rs, err := c.Query(ctx, `SELECT a FROM big ORDER BY a`)
	if err != nil {
		t.Fatalf("spill-policy query: %v", err)
	}
	var prev int64 = -1
	n := 0
	for rs.Next() {
		var a int64
		if err := rs.Scan(&a); err != nil {
			t.Fatal(err)
		}
		if a < prev {
			t.Fatalf("row %d: %d after %d — not sorted", n, a, prev)
		}
		prev = a
		n++
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("spilled sort returned %d rows, want %d", n, rows)
	}
	if got := srv.rejectedMem.Load(); got != 0 {
		t.Fatalf("spill policy bumped rejectedMem %d times", got)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Spills == 0 || st.SpillBytes == 0 {
		t.Fatalf("stats show no spill activity: %+v", st)
	}
	if st.SpillLive != 0 {
		t.Fatalf("%d spill files leaked past query end", st.SpillLive)
	}
	if st.PlanBytes == 0 {
		t.Fatal("stats show an empty plan cache after queries ran")
	}

	// Reject side: the identical workload is refused by the static
	// admission check before it runs.
	rejOpts := []engine.Option{engine.WithMemBudget(budget)}
	addrR, srvR, dbR, _ := startServerWith(t, rejOpts, func(c *Config) {
		c.MemBudget = budget // MemPolicy defaults to reject
	})
	seedScrambled(t, dbR, "big", rows)
	cR := dial(t, addrR)
	if _, err := cR.Query(ctx, `SELECT a FROM big ORDER BY a`); !errors.Is(err, client.ErrBudget) {
		t.Fatalf("reject-policy query err = %v, want ErrBudget", err)
	}
	if srvR.rejectedMem.Load() == 0 {
		t.Fatal("reject policy did not bump rejectedMem")
	}
}

// TestSpillPolicyWithoutSpillDir: "spill" as a server policy with no
// engine spill directory falls back to the engine's runtime rejection —
// the client still sees a typed ErrBudget, after admission rather than
// at the door.
func TestSpillPolicyWithoutSpillDir(t *testing.T) {
	ctx := context.Background()
	const budget = 128 << 10
	addr, srv, db, _ := startServerWith(t,
		[]engine.Option{engine.WithMemBudget(budget)}, // budget but nowhere to spill
		func(c *Config) {
			c.MemBudget = budget
			c.MemPolicy = "spill"
		})
	seedScrambled(t, db, "big", 30000)
	c := dial(t, addr)

	// The ledger denies the sort's grant mid-stream (the pipeline is
	// lazy), so the typed error arrives while draining the cursor.
	rs, err := c.Query(ctx, `SELECT a FROM big ORDER BY a`)
	if err == nil {
		for rs.Next() {
		}
		err = rs.Close()
	}
	if !errors.Is(err, client.ErrBudget) {
		t.Fatalf("runtime over-budget err = %v, want ErrBudget", err)
	}
	// The rejection came from the engine's ledger, not the static check.
	if got := srv.rejectedMem.Load(); got != 0 {
		t.Fatalf("static check ran under spill policy (rejectedMem=%d)", got)
	}
	// The session is still healthy.
	rows, err := c.Query(ctx, `SELECT count(*) AS n FROM big`)
	if err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBadMemPolicyRejected: config validation catches a typo'd policy.
func TestBadMemPolicyRejected(t *testing.T) {
	db, err := engine.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := New(Config{DB: db, MemPolicy: "panic"}); err == nil {
		t.Fatal("New accepted MemPolicy \"panic\"")
	}
}
