// Package server implements monetlited's serving layer: network
// sessions multiplexed onto a bounded worker pool over one shared
// engine.DB. Plan compilation is amortized across connections by the
// engine's shared plan cache; execution is guarded by admission
// control — a bounded number of queries may be in the system (running
// or queued) and each query's estimated working set is checked against
// a per-query memory budget, with typed rejections (ErrQueueFull,
// ErrBudget) instead of unbounded queueing. This is the X100 engine
// behind a wire: on a machine saturated by a few vectorized scans,
// piling more concurrent queries on only destroys cache locality, so
// the pool stays small and overload is refused loudly at the door.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/engine"
	"repro/internal/server/wire"
)

// Typed admission-control rejections. They cross the wire as ErrCode
// values and come back as errors.Is-matchable sentinels in the client.
var (
	// ErrQueueFull: the admission queue is at capacity; the query was
	// rejected without queueing.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrBudget: the query's estimated working set exceeds the
	// per-query memory budget.
	ErrBudget = errors.New("server: query exceeds per-query memory budget")
	// errShutdown: the server is draining and takes no new commands.
	errShutdown = errors.New("server: shutting down")
)

// Config configures a Server. The zero value of every field has a
// usable default except DB, which is required.
type Config struct {
	// DB is the engine all sessions share. Required.
	DB *engine.DB
	// Workers bounds concurrently EXECUTING queries. Default
	// GOMAXPROCS: the engine's morsel pipeline already uses all cores
	// for a single query, so more workers than cores only thrash.
	Workers int
	// QueueDepth bounds queries WAITING for a worker. A query arriving
	// with Workers running and QueueDepth waiting is rejected with
	// ErrQueueFull. Default 4×Workers.
	QueueDepth int
	// MemBudget, when positive, rejects (ErrBudget) any query whose
	// referenced tables' stored bytes exceed it. 0 disables the check.
	MemBudget int64
	// MemPolicy selects what an over-budget query gets: "reject" (the
	// default) refuses it at the door with ErrBudget; "spill" admits it
	// and lets the engine's governed operators degrade to disk, so the
	// static estimate check above is skipped (the runtime ledger and
	// grace-hash re-planning take over). Any other value is a config
	// error.
	MemPolicy string
	// StmtTimeout, when positive, bounds every statement's wall-clock
	// execution (admission wait included); an overrun cancels the query
	// at its next morsel boundary with CodeTimeout. Sessions may
	// override it per-connection with a SetTimeout frame. 0 disables.
	StmtTimeout time.Duration
	// Banner is sent in the Welcome frame.
	Banner string
	// Logf receives diagnostics (connection teardown errors and the
	// like). Default: discard.
	Logf func(format string, args ...any)

	// testGate, when non-nil, is received from by every admitted query
	// after it takes a worker and before it executes. Tests arm it to
	// hold a deterministic pile-up and close it to release; always nil
	// in production (the field is unexported).
	testGate chan struct{}
}

// Server serves the wire protocol over accepted connections.
type Server struct {
	cfg  Config
	logf func(string, ...any)

	// Admission: slots bounds queries in the system (running+waiting),
	// workers bounds the running subset. A query holds a slot from
	// admission to completion and a worker while executing.
	slots   chan struct{}
	workers chan struct{}

	mu       sync.Mutex
	sessions map[*session]struct{}
	ln       net.Listener
	draining bool

	wg sync.WaitGroup // one per serveConn goroutine

	admitted      atomic.Uint64
	rejectedQueue atomic.Uint64
	rejectedMem   atomic.Uint64
	active        atomic.Int64
	queued        atomic.Int64

	// gate, when non-nil, is received from by every admitted query
	// after it takes a worker and before it executes. Tests close it
	// to release a deterministic pile-up; nil in production.
	gate chan struct{}
}

// New validates cfg and builds a Server. Serve must be called to
// accept connections.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	switch cfg.MemPolicy {
	case "", "reject", "spill":
	default:
		return nil, fmt.Errorf("server: Config.MemPolicy %q (want \"reject\" or \"spill\")", cfg.MemPolicy)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		cfg:      cfg,
		logf:     logf,
		slots:    make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		workers:  make(chan struct{}, cfg.Workers),
		sessions: make(map[*session]struct{}),
		gate:     cfg.testGate,
	}, nil
}

// Serve accepts connections on ln until Shutdown closes it (returns
// nil) or Accept fails (returns the error). ctx is the parent of every
// session's query contexts: canceling it cancels all in-flight queries
// at their next morsel boundary.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errShutdown
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func(ctx context.Context, nc net.Conn) {
			defer s.wg.Done()
			s.serveConn(ctx, nc)
		}(ctx, nc)
	}
}

// Shutdown drains the server: the listener closes (Serve returns),
// idle sessions are disconnected, and sessions mid-command finish that
// command before disconnecting — an admitted query is never dropped.
// If ctx expires first, in-flight queries are canceled at their next
// morsel boundary and connections force-closed. The DB itself is NOT
// closed; the caller checkpoints-and-closes it after Shutdown returns
// so the drain and the durability boundary stay separate concerns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	open := make([]*session, 0, len(s.sessions))
	for se := range s.sessions {
		open = append(open, se)
	}
	s.mu.Unlock()

	if ln != nil {
		if err := ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			s.logf("server: closing listener: %v", err)
		}
	}
	for _, se := range open {
		se.drain()
	}

	done := make(chan struct{})
	go func(ctx context.Context) {
		s.wg.Wait()
		close(done)
	}(ctx)
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for se := range s.sessions {
			se.force()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// acquire admits one query: a slot immediately or ErrQueueFull, then a
// worker (waiting in the queue), then the test gate if armed. ctx
// aborts the wait.
func (s *Server) acquire(ctx context.Context) error {
	if s.isDraining() {
		return errShutdown
	}
	select {
	case s.slots <- struct{}{}:
	default:
		s.rejectedQueue.Add(1)
		return ErrQueueFull
	}
	s.queued.Add(1)
	select {
	case s.workers <- struct{}{}:
	case <-ctx.Done():
		s.queued.Add(-1)
		<-s.slots
		return ctx.Err()
	}
	s.queued.Add(-1)
	s.active.Add(1)
	s.admitted.Add(1)
	if g := s.gate; g != nil {
		select {
		case <-g:
		case <-ctx.Done():
			s.release()
			return ctx.Err()
		}
	}
	return nil
}

// release returns a query's worker and slot.
func (s *Server) release() {
	s.active.Add(-1)
	<-s.workers
	<-s.slots
}

// stats assembles the counters for a StatsReply.
func (s *Server) stats() wire.StatsReply {
	pcs := s.cfg.DB.PlanCacheStats()
	scs := s.cfg.DB.SpillStats()
	s.mu.Lock()
	nsess := len(s.sessions)
	s.mu.Unlock()
	return wire.StatsReply{
		PlanHits:    pcs.Hits,
		PlanMisses:  pcs.Misses,
		PlanEntries: uint32(pcs.Entries),
		Sessions:    uint32(nsess),
		Active:      uint32(s.active.Load()),
		Queued:      uint32(s.queued.Load()),
		Admitted:    s.admitted.Load(),
		RejectedQ:   s.rejectedQueue.Load(),
		RejectedMem: s.rejectedMem.Load(),
		PlanBytes:   uint64(pcs.Bytes),
		Spills:      uint64(scs.Spills),
		SpillBytes:  uint64(scs.BytesWritten),
		SpillLive:   uint64(scs.LiveFiles),
	}
}

func (s *Server) register(se *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.sessions[se] = struct{}{}
	return true
}

func (s *Server) unregister(se *session) {
	s.mu.Lock()
	delete(s.sessions, se)
	s.mu.Unlock()
}
