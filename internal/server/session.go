package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/engine"
	"repro/internal/server/wire"
)

// handshakeTimeout bounds how long a fresh connection may take to send
// Hello — a port scanner must not pin a goroutine forever.
const handshakeTimeout = 10 * time.Second

// session is one client connection: an engine.Conn, the prepared
// statements it owns, and the cancel hook for its in-flight query.
//
// Concurrency model: a reader goroutine decodes frames and feeds them
// to the executor (the serveConn goroutine), which is the ONLY writer
// to the connection. Cancel frames never enter the command channel —
// the reader acts on them immediately, which is what makes canceling a
// query that is mid-stream possible at all.
type session struct {
	srv *Server
	nc  net.Conn
	ec  *engine.Conn

	stmts  map[uint32]*engine.Stmt // executor-only
	nextID uint32                  // executor-only

	// stmtTimeout is this session's statement-timeout override, set by
	// a SetTimeout frame; 0 means "no override, use the server's
	// default". Executor-only: SetTimeout flows through the command
	// channel, so no lock is needed.
	stmtTimeout time.Duration

	// guarded by srv.mu is too coarse for per-command state; the
	// session has its own tiny critical sections.
	cancelCur context.CancelFunc // set while a command runs
	inCmd     bool
	drainReq  bool
}

// readErr carries a malformed-frame error from the reader to the
// executor so the Err reply is written by the single writer.
type readErr struct{ err error }

// serveConn runs one connection to completion: handshake, then the
// executor loop. It owns all teardown.
func (s *Server) serveConn(ctx context.Context, nc net.Conn) {
	se := &session{srv: s, nc: nc, stmts: make(map[uint32]*engine.Stmt)}
	defer se.teardown()

	if err := nc.SetReadDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		s.logf("server: %v: set handshake deadline: %v", nc.RemoteAddr(), err)
		return
	}
	m, err := wire.Recv(nc)
	if err != nil {
		s.logf("server: %v: handshake: %v", nc.RemoteAddr(), err)
		return
	}
	h, ok := m.(wire.Hello)
	if !ok {
		se.rejectConn(wire.CodeProtocol, fmt.Sprintf("expected Hello, got %T", m))
		return
	}
	if h.MaxVersion < wire.Version {
		se.rejectConn(wire.CodeProtocol, fmt.Sprintf("client speaks v%d, server needs v%d", h.MaxVersion, wire.Version))
		return
	}
	if err := nc.SetReadDeadline(time.Time{}); err != nil {
		s.logf("server: %v: clear deadline: %v", nc.RemoteAddr(), err)
		return
	}
	if err := wire.Send(nc, wire.Welcome{Version: wire.Version, Banner: s.cfg.Banner}); err != nil {
		s.logf("server: %v: welcome: %v", nc.RemoteAddr(), err)
		return
	}

	se.ec = s.cfg.DB.Conn()
	if !s.register(se) {
		se.rejectConn(wire.CodeShutdown, "server draining")
		return
	}
	defer s.unregister(se)

	cmds := make(chan any, 8)
	go se.readLoop(ctx, cmds)
	se.run(ctx, cmds)
}

// readLoop decodes frames until the connection dies. Cancel is handled
// here, out-of-band; everything else is handed to the executor.
func (se *session) readLoop(ctx context.Context, cmds chan<- any) {
	defer close(cmds)
	for {
		m, err := wire.Recv(se.nc)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
				return
			}
			select {
			case cmds <- readErr{err}:
			case <-ctx.Done():
			}
			return
		}
		if _, ok := m.(wire.Cancel); ok {
			se.cancelCurrent()
			continue
		}
		select {
		case cmds <- m:
		case <-ctx.Done():
			return
		}
	}
}

// run is the executor loop: one command at a time, every reply written
// here. A non-nil dispatch error is a connection-write failure and
// tears the session down; SQL errors were already sent as Err frames.
func (se *session) run(ctx context.Context, cmds <-chan any) {
	for m := range cmds {
		if re, ok := m.(readErr); ok {
			se.rejectConn(wire.CodeProtocol, re.err.Error())
			return
		}
		if !se.begin() {
			se.rejectConn(wire.CodeShutdown, "server draining")
			return
		}
		err := se.dispatch(ctx, m)
		stop := se.end()
		if err != nil {
			se.srv.logf("server: %v: %v", se.nc.RemoteAddr(), err)
			return
		}
		if stop {
			return
		}
	}
}

// begin marks a command in flight; false if the session must stop
// instead (drain requested while the command sat in the channel).
func (se *session) begin() bool {
	se.srv.mu.Lock()
	defer se.srv.mu.Unlock()
	if se.drainReq {
		return false
	}
	se.inCmd = true
	return true
}

// end clears the in-flight mark and reports whether to stop.
func (se *session) end() bool {
	se.srv.mu.Lock()
	defer se.srv.mu.Unlock()
	se.inCmd = false
	return se.drainReq
}

// drain asks the session to stop: immediately (connection closed) if
// idle, after the current command otherwise. Caller holds no locks.
func (se *session) drain() {
	se.srv.mu.Lock()
	se.drainReq = true
	idle := !se.inCmd
	se.srv.mu.Unlock()
	if idle {
		se.closeConn()
	}
}

// force cancels the in-flight query and closes the connection. Called
// with srv.mu held (from Shutdown's deadline path), so it must not
// take it.
func (se *session) force() {
	if se.cancelCur != nil {
		se.cancelCur()
	}
	se.drainReq = true
	se.closeConn()
}

func (se *session) cancelCurrent() {
	se.srv.mu.Lock()
	c := se.cancelCur
	se.srv.mu.Unlock()
	if c != nil {
		c()
	}
}

func (se *session) setCancel(c context.CancelFunc) {
	se.srv.mu.Lock()
	se.cancelCur = c
	se.srv.mu.Unlock()
}

// effectiveTimeout returns the statement timeout to apply: the
// session's SetTimeout override when one is set, the server default
// otherwise.
func (se *session) effectiveTimeout() time.Duration {
	if se.stmtTimeout > 0 {
		return se.stmtTimeout
	}
	return se.srv.cfg.StmtTimeout
}

// closeConn closes the network connection, tolerating double-close
// (teardown races drain by design).
func (se *session) closeConn() {
	if err := se.nc.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		se.srv.logf("server: closing %v: %v", se.nc.RemoteAddr(), err)
	}
}

// teardown releases everything the session owns.
func (se *session) teardown() {
	for _, st := range se.stmts {
		if err := st.Close(); err != nil {
			se.srv.logf("server: closing stmt: %v", err)
		}
	}
	if se.ec != nil {
		if err := se.ec.Close(); err != nil {
			se.srv.logf("server: closing engine conn: %v", err)
		}
	}
	se.closeConn()
}

// sendErr writes an Err frame; the returned error is a connection
// failure (fatal), not the SQL error being reported.
func (se *session) sendErr(code wire.ErrCode, msg string) error {
	return wire.Send(se.nc, wire.Err{Code: code, Msg: msg})
}

// rejectConn sends a best-effort Err frame on a connection that is
// about to be torn down regardless; a failed send is only worth a log
// line because the peer is gone either way.
func (se *session) rejectConn(code wire.ErrCode, msg string) {
	if err := se.sendErr(code, msg); err != nil {
		se.srv.logf("server: %v: reject: %v", se.nc.RemoteAddr(), err)
	}
}

// codeFor maps an execution error to its wire code. DeadlineExceeded
// is the statement timeout firing (the only deadline on a query
// context), so it gets its own code; a Cancel frame or client
// disconnect surfaces as context.Canceled. The engine's runtime
// over-budget rejection maps to the same CodeBudget as the static
// admission check — the client sees one "too big" error either way.
func codeFor(err error) wire.ErrCode {
	switch {
	case errors.Is(err, ErrQueueFull):
		return wire.CodeQueueFull
	case errors.Is(err, ErrBudget), errors.Is(err, engine.ErrOverBudget):
		return wire.CodeBudget
	case errors.Is(err, context.DeadlineExceeded):
		return wire.CodeTimeout
	case errors.Is(err, context.Canceled):
		return wire.CodeCanceled
	case errors.Is(err, errShutdown):
		return wire.CodeShutdown
	}
	return wire.CodeGeneric
}

// dispatch executes one command. Its error contract: non-nil means the
// connection is unusable; command failures are reported in-band.
func (se *session) dispatch(ctx context.Context, m any) error {
	switch c := m.(type) {
	case wire.Query:
		return se.runStmt(ctx, c.SQL, nil, c.Args)
	case wire.Prepare:
		st, err := se.ec.Prepare(c.SQL)
		if err != nil {
			return se.sendErr(wire.CodeGeneric, err.Error())
		}
		se.nextID++
		se.stmts[se.nextID] = st
		return wire.Send(se.nc, wire.PrepareOK{
			StmtID:    se.nextID,
			NumParams: uint16(st.NumParams()),
			IsQuery:   st.IsQuery(),
		})
	case wire.Execute:
		st, ok := se.stmts[c.StmtID]
		if !ok {
			return se.sendErr(wire.CodeUnknown, fmt.Sprintf("unknown statement %d", c.StmtID))
		}
		return se.runStmt(ctx, "", st, c.Args)
	case wire.CloseStmt:
		st, ok := se.stmts[c.StmtID]
		if !ok {
			return se.sendErr(wire.CodeUnknown, fmt.Sprintf("unknown statement %d", c.StmtID))
		}
		delete(se.stmts, c.StmtID)
		if err := st.Close(); err != nil {
			return se.sendErr(wire.CodeGeneric, err.Error())
		}
		return wire.Send(se.nc, wire.Done{})
	case wire.Plan:
		text, err := se.ec.Plan(c.SQL)
		if err != nil {
			return se.sendErr(wire.CodeGeneric, err.Error())
		}
		return wire.Send(se.nc, wire.PlanReply{Text: text})
	case wire.SetTimeout:
		se.stmtTimeout = time.Duration(c.Millis) * time.Millisecond
		return wire.Send(se.nc, wire.Done{})
	case wire.Tables:
		return wire.Send(se.nc, wire.TablesReply{Names: se.srv.cfg.DB.Tables()})
	case wire.Stats:
		return wire.Send(se.nc, se.srv.stats())
	}
	return se.sendErr(wire.CodeProtocol, fmt.Sprintf("unexpected %T frame", m))
}

// runStmt executes one query or DML command — one-shot (sql, owned
// statement) or prepared (st) — through admission control, streaming
// results. The command terminates with exactly one Done or Err frame.
func (se *session) runStmt(ctx context.Context, sql string, st *engine.Stmt, args []any) error {
	var qctx context.Context
	var cancel context.CancelFunc
	if d := se.effectiveTimeout(); d > 0 {
		// The deadline covers the whole statement — admission wait,
		// execution, and result streaming. An overrun cancels the query
		// at its next morsel boundary and reports CodeTimeout.
		qctx, cancel = context.WithTimeout(ctx, d)
	} else {
		qctx, cancel = context.WithCancel(ctx)
	}
	defer func() {
		se.setCancel(nil)
		cancel()
	}()
	se.setCancel(cancel)

	if st == nil {
		var err error
		st, err = se.ec.Prepare(sql)
		if err != nil {
			return se.sendErr(wire.CodeGeneric, err.Error())
		}
		defer func() {
			if err := st.Close(); err != nil {
				se.srv.logf("server: closing stmt: %v", err)
			}
		}()
	}

	// Under the "spill" policy the static estimate check is skipped:
	// the engine's runtime ledger governs the query and over-grants
	// degrade to disk instead of being refused at the door.
	if b := se.srv.cfg.MemBudget; b > 0 && se.srv.cfg.MemPolicy != "spill" {
		if est := st.EstimateBytes(); est > b {
			se.srv.rejectedMem.Add(1)
			return se.sendErr(wire.CodeBudget,
				fmt.Sprintf("%v: statement touches ~%d stored bytes, budget is %d", ErrBudget, est, b))
		}
	}
	if err := se.srv.acquire(qctx); err != nil {
		return se.sendErr(codeFor(err), err.Error())
	}
	defer se.srv.release()

	if !st.IsQuery() {
		res, err := st.Exec(qctx, args...)
		if err != nil {
			return se.sendErr(codeFor(err), err.Error())
		}
		return wire.Send(se.nc, wire.Done{RowsAffected: res.RowsAffected})
	}

	rows, err := st.Query(qctx, args...)
	if err != nil {
		return se.sendErr(codeFor(err), err.Error())
	}
	defer func() {
		if err := rows.Close(); err != nil {
			se.srv.logf("server: closing rows: %v", err)
		}
	}()
	cols := rows.Columns()
	if err := wire.Send(se.nc, wire.RowDesc{Cols: cols}); err != nil {
		return err
	}
	vals := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			return se.sendErr(wire.CodeGeneric, err.Error())
		}
		if err := wire.Send(se.nc, wire.Row{Vals: vals}); err != nil {
			return err
		}
	}
	if err := rows.Err(); err != nil {
		return se.sendErr(codeFor(err), err.Error())
	}
	return wire.Send(se.nc, wire.Done{})
}
