package server

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/engine"
)

// BenchmarkServe measures end-to-end wire round trips — dial once,
// prepare once, then Execute a vectorized aggregate repeatedly — at
// 1, 4 and 8 concurrent connections. Per-query latencies are recorded
// so p50/p99 land next to throughput in the benchmark output
// (BENCH_pr8.json snapshots a full run).
func BenchmarkServe(b *testing.B) {
	for _, conns := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			benchServe(b, conns)
		})
	}
}

func benchServe(b *testing.B, conns int) {
	db, err := engine.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}()
	seed := db.Conn()
	if _, err := seed.Exec(context.Background(), "CREATE TABLE t (a INT, b INT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sql := "INSERT INTO t VALUES (0, 0)"
		for j := 1; j < 1000; j++ {
			sql += fmt.Sprintf(", (%d, %d)", i*1000+j, j%97)
		}
		if _, err := seed.Exec(context.Background(), sql); err != nil {
			b.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}

	srv, err := New(Config{DB: db, Workers: conns, QueueDepth: 4 * conns, Banner: "bench", Logf: b.Logf})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func(ctx context.Context) {
		serveErr <- srv.Serve(ctx, ln)
	}(context.Background())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
		if err := <-serveErr; err != nil {
			b.Fatal(err)
		}
	}()

	clients := make([]*client.Client, conns)
	stmts := make([]*client.Stmt, conns)
	for i := range clients {
		c, err := client.Dial(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		st, err := c.Prepare("SELECT sum(b) AS s FROM t WHERE a < ?")
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = c
		stmts[i] = st
	}

	perConn := b.N / conns
	if perConn == 0 {
		perConn = 1
	}
	lat := make([][]time.Duration, conns)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := stmts[i]
			ds := make([]time.Duration, 0, perConn)
			for q := 0; q < perConn; q++ {
				start := time.Now()
				rows, err := st.Query(context.Background(), int64(5000))
				if err != nil {
					b.Error(err)
					return
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					b.Error(err)
					return
				}
				if err := rows.Close(); err != nil {
					b.Error(err)
					return
				}
				ds = append(ds, time.Since(start))
			}
			lat[i] = ds
		}(i)
	}
	wg.Wait()
	b.StopTimer()

	var all []time.Duration
	for _, ds := range lat {
		all = append(all, ds...)
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := conns * perConn
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(float64(all[len(all)/2].Microseconds()), "p50-µs")
	b.ReportMetric(float64(all[len(all)*99/100].Microseconds()), "p99-µs")
}
