// Package wire defines monetlited's client/server frame protocol.
//
// Every frame is a fixed 9-byte header followed by a payload:
//
//	type    u8       frame type (Type constants)
//	length  u32 BE   payload length, at most MaxPayload
//	crc     u32 BE   IEEE CRC-32 of type || length || payload
//	payload length bytes
//
// The CRC makes torn or corrupted frames a protocol error instead of a
// silent misparse, mirroring the storage layer's checksummed pages. All
// integers are big-endian. Strings and byte blobs are u32-length-
// prefixed. The encoder and decoder are pure functions over byte
// slices (no connection state), which keeps them fuzz-friendly:
// FuzzFrameDecode drives DecodePayload directly.
//
// Version negotiation: the client opens with Hello carrying the
// highest protocol version it speaks; the server replies Welcome with
// the version the connection will use (today always Version), or Err
// if there is no overlap.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the protocol version this package implements. Version 2
// added SetTimeout, CodeTimeout, and the plan-cache/spill fields of
// StatsReply.
const Version = 2

// MaxPayload bounds a single frame. Result sets stream as many Row
// frames, so nothing legitimate approaches it; anything larger is a
// corrupt length field.
const MaxPayload = 16 << 20

// headerLen is the fixed frame-header size.
const headerLen = 9

// Type identifies a frame.
type Type uint8

// Frame types. Client→server and server→client types share one space
// so a trace is unambiguous.
const (
	THello      Type = 1  // client: version negotiation opener
	TWelcome    Type = 2  // server: negotiated version + banner
	TQuery      Type = 3  // client: one-shot SQL with inline args
	TPrepare    Type = 4  // client: compile SQL into a server-side stmt
	TPrepareOK  Type = 5  // server: stmt handle
	TExecute    Type = 6  // client: run a prepared stmt with args
	TCloseStmt  Type = 7  // client: release a stmt handle
	TRowDesc    Type = 8  // server: result column names
	TRow        Type = 9  // server: one result row
	TDone       Type = 10 // server: command finished OK
	TErr        Type = 11 // server: command failed
	TCancel     Type = 12 // client: cancel the in-flight command
	TStats      Type = 13 // client: request server counters
	TStatsRep   Type = 14 // server: counters
	TPlan       Type = 15 // client: explain a SELECT
	TPlanRep    Type = 16 // server: plan text
	TTables     Type = 17 // client: list tables
	TTablesRep  Type = 18 // server: table names
	TSetTimeout Type = 19 // client: set this session's statement timeout
)

func (t Type) String() string {
	switch t {
	case THello:
		return "Hello"
	case TWelcome:
		return "Welcome"
	case TQuery:
		return "Query"
	case TPrepare:
		return "Prepare"
	case TPrepareOK:
		return "PrepareOK"
	case TExecute:
		return "Execute"
	case TCloseStmt:
		return "CloseStmt"
	case TRowDesc:
		return "RowDesc"
	case TRow:
		return "Row"
	case TDone:
		return "Done"
	case TErr:
		return "Err"
	case TCancel:
		return "Cancel"
	case TStats:
		return "Stats"
	case TStatsRep:
		return "StatsReply"
	case TPlan:
		return "Plan"
	case TPlanRep:
		return "PlanReply"
	case TTables:
		return "Tables"
	case TTablesRep:
		return "TablesReply"
	case TSetTimeout:
		return "SetTimeout"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ErrCode classifies server-side failures so clients can map them back
// to typed errors (the admission-control rejections in particular).
type ErrCode uint16

const (
	CodeGeneric   ErrCode = 0 // SQL or execution error; message has detail
	CodeQueueFull ErrCode = 1 // admission: queue at capacity
	CodeBudget    ErrCode = 2 // admission: per-query memory budget exceeded
	CodeCanceled  ErrCode = 3 // command canceled (Cancel frame or ctx)
	CodeProtocol  ErrCode = 4 // malformed frame or out-of-order command
	CodeUnknown   ErrCode = 5 // unknown statement handle
	CodeShutdown  ErrCode = 6 // server draining; no new commands
	CodeTimeout   ErrCode = 7 // statement timeout elapsed mid-execution
)

// Frame is one decoded frame: its type plus raw payload bytes.
type Frame struct {
	Type    Type
	Payload []byte
}

var crcTab = crc32.IEEETable

// header serializes the frame header (sans CRC fill) and returns the
// running CRC of type||length.
func header(buf *[headerLen]byte, t Type, n int) uint32 {
	buf[0] = byte(t)
	binary.BigEndian.PutUint32(buf[1:5], uint32(n))
	return crc32.Update(0, crcTab, buf[0:5])
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wire: payload %d bytes exceeds MaxPayload", len(payload))
	}
	var h [headerLen]byte
	crc := header(&h, t, len(payload))
	crc = crc32.Update(crc, crcTab, payload)
	binary.BigEndian.PutUint32(h[5:9], crc)
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r, verifying length bound and CRC.
func ReadFrame(r io.Reader) (Frame, error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(h[1:5])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("wire: frame length %d exceeds MaxPayload", n)
	}
	want := binary.BigEndian.Uint32(h[5:9])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: short payload: %w", err)
	}
	crc := crc32.Update(0, crcTab, h[0:5])
	crc = crc32.Update(crc, crcTab, payload)
	if crc != want {
		return Frame{}, fmt.Errorf("wire: CRC mismatch on %s frame", Type(h[0]))
	}
	return Frame{Type: Type(h[0]), Payload: payload}, nil
}

// ---------------------------------------------------------------------
// Value codec. Result cells and bind arguments are dynamically typed;
// each value is a kind byte plus a fixed- or length-prefixed encoding.
// The Go-side representation matches the engine API: nil, int64,
// float64, string, bool.

const (
	kindNull  = 0
	kindInt   = 1 // 8-byte big-endian two's complement
	kindFloat = 2 // 8-byte big-endian IEEE-754 bits
	kindStr   = 3 // u32 length + bytes
	kindBool  = 4 // 1 byte, 0 or 1
)

// AppendValue encodes one value. Only nil, int64, float64, string and
// bool are wire types; anything else is a caller bug.
func AppendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, kindNull), nil
	case int64:
		b = append(b, kindInt)
		return binary.BigEndian.AppendUint64(b, uint64(x)), nil
	case float64:
		b = append(b, kindFloat)
		return binary.BigEndian.AppendUint64(b, math.Float64bits(x)), nil
	case string:
		b = append(b, kindStr)
		b = binary.BigEndian.AppendUint32(b, uint32(len(x)))
		return append(b, x...), nil
	case bool:
		if x {
			return append(b, kindBool, 1), nil
		}
		return append(b, kindBool, 0), nil
	}
	return nil, fmt.Errorf("wire: unsupported value type %T", v)
}

// reader is a bounds-checked cursor over a payload. Decoders read
// through it and check err once at the end; a truncated payload yields
// zero values plus a sticky error rather than a panic, which is what
// lets the fuzzer hammer DecodePayload with garbage.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated payload at byte %d", r.off)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// boolean reads a strict 0-or-1 byte. Rejecting other values keeps
// the codec canonical: every accepted payload re-encodes to itself.
func (r *reader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = fmt.Errorf("wire: bool byte not 0 or 1 at byte %d", r.off-1)
		}
		return false
	}
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

func (r *reader) value() any {
	switch k := r.u8(); k {
	case kindNull:
		return nil
	case kindInt:
		return int64(r.u64())
	case kindFloat:
		return math.Float64frombits(r.u64())
	case kindStr:
		return r.str()
	case kindBool:
		return r.boolean()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("wire: unknown value kind %d", k)
		}
		return nil
	}
}

// values decodes a u16-count-prefixed value list.
func (r *reader) values() []any {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	// Each value takes at least one byte; reject counts the remaining
	// payload cannot possibly hold so a forged count cannot force a
	// huge allocation.
	if n > len(r.b)-r.off {
		r.fail()
		return nil
	}
	out := make([]any, n)
	for i := range out {
		out[i] = r.value()
	}
	return out
}

func (r *reader) strs() []string {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if n*4 > len(r.b)-r.off { // each string costs at least its u32 length
		r.fail()
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

// done returns the sticky error, also failing if bytes trail the
// message (a length bug on the peer, or a fuzz input worth rejecting).
func (r *reader) done() error {
	if r.err == nil && r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after payload", len(r.b)-r.off)
	}
	return r.err
}

func appendValues(b []byte, vals []any) ([]byte, error) {
	if len(vals) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: %d values exceed frame limit", len(vals))
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(vals)))
	var err error
	for _, v := range vals {
		if b, err = AppendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendStrs(b []byte, ss []string) ([]byte, error) {
	if len(ss) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: %d strings exceed frame limit", len(ss))
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(ss)))
	for _, s := range ss {
		b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	return b, nil
}

func appendStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// ---------------------------------------------------------------------
// Message types. Each has an Encode producing its payload and is
// decoded via DecodePayload, which dispatches on frame type.

// Hello opens a connection: the highest protocol version the client
// speaks.
type Hello struct {
	MaxVersion uint32
}

// Welcome accepts a connection at a negotiated version.
type Welcome struct {
	Version uint32
	Banner  string
}

// Query runs one-shot SQL with inline bind arguments.
type Query struct {
	SQL  string
	Args []any
}

// Prepare compiles SQL into a server-side statement handle.
type Prepare struct {
	SQL string
}

// PrepareOK returns the handle.
type PrepareOK struct {
	StmtID    uint32
	NumParams uint16
	IsQuery   bool
}

// Execute runs a prepared statement.
type Execute struct {
	StmtID uint32
	Args   []any
}

// CloseStmt releases a handle.
type CloseStmt struct {
	StmtID uint32
}

// RowDesc announces result columns; sent once before Row frames.
type RowDesc struct {
	Cols []string
}

// Row carries one result row.
type Row struct {
	Vals []any
}

// Done ends a successful command.
type Done struct {
	RowsAffected int64
}

// Err ends a failed command.
type Err struct {
	Code ErrCode
	Msg  string
}

// Cancel asks the server to cancel the session's in-flight command. It
// is read out-of-band: the session's reader goroutine handles it while
// the executor is still streaming.
type Cancel struct{}

// Stats requests server counters.
type Stats struct{}

// StatsReply carries them. PlanHits/PlanMisses/PlanEntries/PlanBytes
// expose the shared plan cache, which is how a client observes that its
// statement was compiled on another connection; Spills/SpillBytes/
// SpillLive expose the engine's out-of-core activity.
type StatsReply struct {
	PlanHits    uint64
	PlanMisses  uint64
	PlanEntries uint32
	Sessions    uint32
	Active      uint32
	Queued      uint32
	Admitted    uint64
	RejectedQ   uint64
	RejectedMem uint64
	PlanBytes   uint64 // summed estimated footprint of cached plans
	Spills      uint64 // spill files created since Open
	SpillBytes  uint64 // payload bytes written to spill files since Open
	SpillLive   uint64 // spill files currently on disk
}

// Plan asks for a SELECT's physical plan rendering.
type Plan struct {
	SQL string
}

// PlanReply carries the plan text.
type PlanReply struct {
	Text string
}

// SetTimeout overrides the server's default statement timeout for this
// session: every subsequent Query/Execute is canceled (CodeTimeout)
// once Millis milliseconds elapse. Millis 0 clears the override,
// reverting to the server's default. Acknowledged with Done.
type SetTimeout struct {
	Millis uint32
}

// Tables asks for the table list.
type Tables struct{}

// TablesReply carries it.
type TablesReply struct {
	Names []string
}

func (m Hello) Encode() ([]byte, error) {
	return binary.BigEndian.AppendUint32(nil, m.MaxVersion), nil
}

func (m Welcome) Encode() ([]byte, error) {
	b := binary.BigEndian.AppendUint32(nil, m.Version)
	return appendStr(b, m.Banner), nil
}

func (m Query) Encode() ([]byte, error) {
	b := appendStr(nil, m.SQL)
	return appendValues(b, m.Args)
}

func (m Prepare) Encode() ([]byte, error) {
	return appendStr(nil, m.SQL), nil
}

func (m PrepareOK) Encode() ([]byte, error) {
	b := binary.BigEndian.AppendUint32(nil, m.StmtID)
	b = binary.BigEndian.AppendUint16(b, m.NumParams)
	if m.IsQuery {
		return append(b, 1), nil
	}
	return append(b, 0), nil
}

func (m Execute) Encode() ([]byte, error) {
	b := binary.BigEndian.AppendUint32(nil, m.StmtID)
	return appendValues(b, m.Args)
}

func (m CloseStmt) Encode() ([]byte, error) {
	return binary.BigEndian.AppendUint32(nil, m.StmtID), nil
}

func (m RowDesc) Encode() ([]byte, error) {
	return appendStrs(nil, m.Cols)
}

func (m Row) Encode() ([]byte, error) {
	return appendValues(nil, m.Vals)
}

func (m Done) Encode() ([]byte, error) {
	return binary.BigEndian.AppendUint64(nil, uint64(m.RowsAffected)), nil
}

func (m Err) Encode() ([]byte, error) {
	b := binary.BigEndian.AppendUint16(nil, uint16(m.Code))
	return appendStr(b, m.Msg), nil
}

func (m Cancel) Encode() ([]byte, error) { return nil, nil }

func (m Stats) Encode() ([]byte, error) { return nil, nil }

func (m StatsReply) Encode() ([]byte, error) {
	b := binary.BigEndian.AppendUint64(nil, m.PlanHits)
	b = binary.BigEndian.AppendUint64(b, m.PlanMisses)
	b = binary.BigEndian.AppendUint32(b, m.PlanEntries)
	b = binary.BigEndian.AppendUint32(b, m.Sessions)
	b = binary.BigEndian.AppendUint32(b, m.Active)
	b = binary.BigEndian.AppendUint32(b, m.Queued)
	b = binary.BigEndian.AppendUint64(b, m.Admitted)
	b = binary.BigEndian.AppendUint64(b, m.RejectedQ)
	b = binary.BigEndian.AppendUint64(b, m.RejectedMem)
	b = binary.BigEndian.AppendUint64(b, m.PlanBytes)
	b = binary.BigEndian.AppendUint64(b, m.Spills)
	b = binary.BigEndian.AppendUint64(b, m.SpillBytes)
	return binary.BigEndian.AppendUint64(b, m.SpillLive), nil
}

func (m SetTimeout) Encode() ([]byte, error) {
	return binary.BigEndian.AppendUint32(nil, m.Millis), nil
}

func (m Plan) Encode() ([]byte, error) {
	return appendStr(nil, m.SQL), nil
}

func (m PlanReply) Encode() ([]byte, error) {
	return appendStr(nil, m.Text), nil
}

func (m Tables) Encode() ([]byte, error) { return nil, nil }

func (m TablesReply) Encode() ([]byte, error) {
	return appendStrs(nil, m.Names)
}

// typeOf maps a message to its frame type.
func typeOf(m any) (Type, bool) {
	switch m.(type) {
	case Hello:
		return THello, true
	case Welcome:
		return TWelcome, true
	case Query:
		return TQuery, true
	case Prepare:
		return TPrepare, true
	case PrepareOK:
		return TPrepareOK, true
	case Execute:
		return TExecute, true
	case CloseStmt:
		return TCloseStmt, true
	case RowDesc:
		return TRowDesc, true
	case Row:
		return TRow, true
	case Done:
		return TDone, true
	case Err:
		return TErr, true
	case Cancel:
		return TCancel, true
	case Stats:
		return TStats, true
	case StatsReply:
		return TStatsRep, true
	case Plan:
		return TPlan, true
	case PlanReply:
		return TPlanRep, true
	case Tables:
		return TTables, true
	case TablesReply:
		return TTablesRep, true
	case SetTimeout:
		return TSetTimeout, true
	}
	return 0, false
}

// Send encodes m and writes it as one frame.
func Send(w io.Writer, m interface{ Encode() ([]byte, error) }) error {
	t, ok := typeOf(m)
	if !ok {
		return fmt.Errorf("wire: not a protocol message: %T", m)
	}
	payload, err := m.Encode()
	if err != nil {
		return err
	}
	return WriteFrame(w, t, payload)
}

// DecodePayload decodes a frame's payload into its message struct.
// Every malformed input returns an error; it never panics (enforced by
// FuzzFrameDecode).
func DecodePayload(t Type, payload []byte) (any, error) {
	r := &reader{b: payload}
	var m any
	switch t {
	case THello:
		m = Hello{MaxVersion: r.u32()}
	case TWelcome:
		m = Welcome{Version: r.u32(), Banner: r.str()}
	case TQuery:
		m = Query{SQL: r.str(), Args: r.values()}
	case TPrepare:
		m = Prepare{SQL: r.str()}
	case TPrepareOK:
		m = PrepareOK{StmtID: r.u32(), NumParams: r.u16(), IsQuery: r.boolean()}
	case TExecute:
		m = Execute{StmtID: r.u32(), Args: r.values()}
	case TCloseStmt:
		m = CloseStmt{StmtID: r.u32()}
	case TRowDesc:
		m = RowDesc{Cols: r.strs()}
	case TRow:
		m = Row{Vals: r.values()}
	case TDone:
		m = Done{RowsAffected: int64(r.u64())}
	case TErr:
		m = Err{Code: ErrCode(r.u16()), Msg: r.str()}
	case TCancel:
		m = Cancel{}
	case TStats:
		m = Stats{}
	case TStatsRep:
		m = StatsReply{
			PlanHits:    r.u64(),
			PlanMisses:  r.u64(),
			PlanEntries: r.u32(),
			Sessions:    r.u32(),
			Active:      r.u32(),
			Queued:      r.u32(),
			Admitted:    r.u64(),
			RejectedQ:   r.u64(),
			RejectedMem: r.u64(),
			PlanBytes:   r.u64(),
			Spills:      r.u64(),
			SpillBytes:  r.u64(),
			SpillLive:   r.u64(),
		}
	case TPlan:
		m = Plan{SQL: r.str()}
	case TPlanRep:
		m = PlanReply{Text: r.str()}
	case TTables:
		m = Tables{}
	case TTablesRep:
		m = TablesReply{Names: r.strs()}
	case TSetTimeout:
		m = SetTimeout{Millis: r.u32()}
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", uint8(t))
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Recv reads one frame and decodes its payload.
func Recv(r io.Reader) (any, error) {
	f, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return DecodePayload(f.Type, f.Payload)
}
