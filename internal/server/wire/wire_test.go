package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
)

// allMessages is one of each frame, with non-zero fields, for
// round-trip coverage.
func allMessages() []interface{ Encode() ([]byte, error) } {
	return []interface{ Encode() ([]byte, error) }{
		Hello{MaxVersion: 1},
		Welcome{Version: 1, Banner: "monetlited"},
		Query{SQL: "SELECT a FROM t WHERE a > ?", Args: []any{int64(3), "x", 1.5, true, nil}},
		Prepare{SQL: "SELECT 1 AS one"},
		PrepareOK{StmtID: 7, NumParams: 2, IsQuery: true},
		Execute{StmtID: 7, Args: []any{int64(-1)}},
		CloseStmt{StmtID: 7},
		RowDesc{Cols: []string{"a", "b", ""}},
		Row{Vals: []any{nil, int64(42), "héllo\x00bytes", -0.0, false}},
		Done{RowsAffected: -1},
		Err{Code: CodeQueueFull, Msg: "queue full"},
		Cancel{},
		Stats{},
		StatsReply{PlanHits: 1, PlanMisses: 2, PlanEntries: 3, Sessions: 4, Active: 5, Queued: 6, Admitted: 7, RejectedQ: 8, RejectedMem: 9, PlanBytes: 10, Spills: 11, SpillBytes: 12, SpillLive: 13},
		Plan{SQL: "SELECT a FROM t"},
		PlanReply{Text: "scan(t.a)\nselect(>)"},
		Tables{},
		TablesReply{Names: []string{"t", "u"}},
		SetTimeout{Millis: 1500},
	}
}

func TestRoundTripAll(t *testing.T) {
	var buf bytes.Buffer
	msgs := allMessages()
	for _, m := range msgs {
		if err := Send(&buf, m); err != nil {
			t.Fatalf("Send(%T): %v", m, err)
		}
	}
	for _, want := range msgs {
		got, err := Recv(&buf)
		if err != nil {
			t.Fatalf("Recv(%T): %v", want, err)
		}
		if !reflect.DeepEqual(got, any(want)) {
			t.Fatalf("round trip %T: got %#v, want %#v", want, got, want)
		}
	}
	if _, err := Recv(&buf); err != io.EOF {
		t.Fatalf("drained stream: err = %v, want EOF", err)
	}
}

func TestCRCCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Send(&buf, Query{SQL: "SELECT 1 AS one"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload bit.
	raw[len(raw)-1] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted frame: err = %v, want CRC mismatch", err)
	}
}

func TestHeaderCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Send(&buf, Done{RowsAffected: 3}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] = byte(TErr) // retype the frame; CRC covers the header too
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("retyped frame: err = %v, want CRC mismatch", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var h [9]byte
	h[0] = byte(TQuery)
	binary.BigEndian.PutUint32(h[1:5], MaxPayload+1)
	if _, err := ReadFrame(bytes.NewReader(h[:])); err == nil || !strings.Contains(err.Error(), "MaxPayload") {
		t.Fatalf("oversized frame: err = %v, want MaxPayload rejection", err)
	}
}

func TestTruncatedPayloadRejected(t *testing.T) {
	for _, m := range allMessages() {
		tt, _ := typeOf(m)
		payload, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodePayload(tt, payload[:cut]); err == nil {
				t.Fatalf("%T truncated to %d/%d bytes decoded without error", m, cut, len(payload))
			}
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	payload, err := Hello{MaxVersion: 1}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayload(THello, append(payload, 0xAB)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}

func TestForgedCountRejected(t *testing.T) {
	// A Row claiming 65535 values in a 2-byte payload must be rejected
	// without allocating for the claimed count.
	payload := binary.BigEndian.AppendUint16(nil, 65535)
	if _, err := DecodePayload(TRow, payload); err == nil {
		t.Fatal("forged value count decoded without error")
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	if _, err := DecodePayload(Type(200), nil); err == nil {
		t.Fatal("unknown frame type decoded without error")
	}
}

func TestUnsupportedValueType(t *testing.T) {
	if _, err := AppendValue(nil, uint32(1)); err == nil {
		t.Fatal("AppendValue(uint32) must error")
	}
	if err := Send(io.Discard, Row{Vals: []any{struct{}{}}}); err == nil {
		t.Fatal("Send with unsupported value must error")
	}
}

// FuzzFrameDecode hammers the decoder with arbitrary (type, payload)
// inputs: it must never panic, and every successful decode must
// re-encode to an equivalent message (round-trip stability).
func FuzzFrameDecode(f *testing.F) {
	for _, m := range allMessages() {
		tt, _ := typeOf(m)
		payload, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(byte(tt), payload)
	}
	f.Add(byte(TQuery), []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(byte(TRow), binary.BigEndian.AppendUint16(nil, 65535))
	f.Fuzz(func(t *testing.T, tb byte, payload []byte) {
		m, err := DecodePayload(Type(tb), payload)
		if err != nil {
			return
		}
		enc, ok := m.(interface{ Encode() ([]byte, error) })
		if !ok {
			t.Fatalf("decoded %T does not encode", m)
		}
		out, err := enc.Encode()
		if err != nil {
			t.Fatalf("re-encode %#v: %v", m, err)
		}
		if !bytes.Equal(out, payload) {
			t.Fatalf("decode/encode not stable for type %d:\n in: %x\nout: %x", tb, payload, out)
		}
	})
}
