package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/engine"
	"repro/internal/server/wire"
)

// sendRawHello writes a Hello frame claiming the given max protocol
// version, bypassing the client package's pinned version.
func sendRawHello(nc net.Conn, version uint32) error {
	return wire.Send(nc, wire.Hello{MaxVersion: version})
}

// startServer opens an engine (in dir if non-empty), serves it on a
// loopback listener, and returns the address plus a shutdown func.
func startServer(t *testing.T, dir string, mutate func(*Config)) (addr string, srv *Server, db *engine.DB, stop func(ctx context.Context) error) {
	t.Helper()
	var opts []engine.Option
	if dir != "" {
		opts = append(opts, engine.WithDir(dir))
	}
	return startServerWith(t, opts, mutate)
}

// startServerWith is startServer with explicit engine options (memory
// budgets, spill directories, and the like).
func startServerWith(t *testing.T, opts []engine.Option, mutate func(*Config)) (addr string, srv *Server, db *engine.DB, stop func(ctx context.Context) error) {
	t.Helper()
	db, err := engine.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{DB: db, Banner: "test", Logf: t.Logf}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func(ctx context.Context) {
		serveErr <- srv.Serve(ctx, ln)
	}(context.Background())
	stopped := false
	stop = func(ctx context.Context) error {
		stopped = true
		err := srv.Shutdown(ctx)
		if serr := <-serveErr; serr != nil && err == nil {
			err = serr
		}
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	}
	t.Cleanup(func() {
		if !stopped {
			if err := stop(context.Background()); err != nil {
				t.Errorf("cleanup shutdown: %v", err)
			}
		}
	})
	return ln.Addr().String(), srv, db, stop
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestServeBasic(t *testing.T) {
	ctx := context.Background()
	addr, _, _, _ := startServer(t, "", nil)
	c := dial(t, addr)
	if c.Banner() != "test" {
		t.Fatalf("banner = %q", c.Banner())
	}

	if _, err := c.Exec(ctx, `CREATE TABLE t (a INT, b TEXT)`); err != nil {
		t.Fatal(err)
	}
	n, err := c.Exec(ctx, `INSERT INTO t VALUES (1, 'x'), (2, NULL), (3, 'z')`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("rows affected = %d, want 3", n)
	}

	rows, err := c.Query(ctx, `SELECT a, b FROM t ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for rows.Next() {
		var a int64
		var b any
		if err := rows.Scan(&a, &b); err != nil {
			t.Fatal(err)
		}
		got = append(got, fmt.Sprintf("%d:%v", a, b))
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{"1:x", "2:<nil>", "3:z"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}

	// Prepared round trip.
	st, err := c.Prepare(`SELECT a FROM t WHERE a >= ? ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 1 || !st.IsQuery() {
		t.Fatalf("stmt meta: params=%d query=%v", st.NumParams(), st.IsQuery())
	}
	r2, err := st.Query(ctx, int64(2))
	if err != nil {
		t.Fatal(err)
	}
	cnt := 0
	for r2.Next() {
		cnt++
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	if cnt != 2 {
		t.Fatalf("prepared query rows = %d, want 2", cnt)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Metadata commands.
	tables, err := c.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0] != "t" {
		t.Fatalf("tables = %v", tables)
	}
	plan, err := c.Plan(`SELECT a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Fatal("empty plan")
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", stats.Sessions)
	}

	// SQL errors are in-band: the connection survives them.
	if _, err := c.Exec(ctx, `SELECT nope FROM t`); err == nil {
		t.Fatal("bad column must error")
	}
	if _, err := c.Exec(ctx, `INSERT INTO t VALUES (4, 'ok')`); err != nil {
		t.Fatalf("connection unusable after SQL error: %v", err)
	}
}

// TestCrossConnectionPlanCacheHit is the serving-layer acceptance
// check: a statement prepared on one connection is visible as a plan
// cache hit when a SECOND connection prepares the same SQL, observable
// through the stats frame.
func TestCrossConnectionPlanCacheHit(t *testing.T) {
	ctx := context.Background()
	addr, _, _, _ := startServer(t, "", nil)
	c1 := dial(t, addr)
	c2 := dial(t, addr)

	if _, err := c1.Exec(ctx, `CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec(ctx, `INSERT INTO t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}

	const q = `SELECT a FROM t WHERE a > ? ORDER BY a`
	st1, err := c1.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	before, err := c1.Stats()
	if err != nil {
		t.Fatal(err)
	}

	st2, err := c2.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	after, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.PlanHits <= before.PlanHits {
		t.Fatalf("prepare on second connection must hit the shared cache: before %+v, after %+v", before, after)
	}
	if after.PlanMisses != before.PlanMisses {
		t.Fatalf("prepare on second connection must not compile: before %+v, after %+v", before, after)
	}

	// And the hit statement actually works.
	rows, err := st2.Query(ctx, int64(1))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("rows = %d, want 1", n)
	}
}

// TestConcurrentClientsMatchOracle runs 8 concurrent client
// connections against the server and checks every result against a
// single-connection oracle computed first. Run under -race.
func TestConcurrentClientsMatchOracle(t *testing.T) {
	ctx := context.Background()
	// Capacity must absorb 8 concurrent clients without rejections:
	// this test is about correctness under concurrency, not admission.
	addr, _, db, _ := startServer(t, "", func(c *Config) {
		c.Workers = 4
		c.QueueDepth = 32
	})

	seed := dial(t, addr)
	if _, err := seed.Exec(ctx, `CREATE TABLE nums (a INT, g INT)`); err != nil {
		t.Fatal(err)
	}
	for base := 0; base < 2000; base += 500 {
		sql := `INSERT INTO nums VALUES `
		for i := 0; i < 500; i++ {
			if i > 0 {
				sql += ", "
			}
			v := base + i
			sql += fmt.Sprintf("(%d, %d)", v, v%7)
		}
		if _, err := seed.Exec(ctx, sql); err != nil {
			t.Fatal(err)
		}
	}

	queries := []string{
		`SELECT count(*) AS n FROM nums`,
		`SELECT sum(a) AS s FROM nums WHERE a < 1000`,
		`SELECT g, count(*) AS n FROM nums GROUP BY g ORDER BY g`,
		`SELECT a FROM nums WHERE a >= 1990 ORDER BY a`,
		`SELECT min(a) AS lo, max(a) AS hi FROM nums WHERE g = 3`,
	}

	// Oracle: each query's full result via a direct engine connection.
	collect := func(run func(q string) ([][]any, error), q string) [][]any {
		t.Helper()
		out, err := run(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return out
	}
	oracleRun := func(q string) ([][]any, error) {
		conn := db.Conn()
		defer conn.Close()
		rows, err := conn.Query(ctx, q)
		if err != nil {
			return nil, err
		}
		defer rows.Close()
		var out [][]any
		ncols := len(rows.Columns())
		for rows.Next() {
			vals := make([]any, ncols)
			ptrs := make([]any, ncols)
			for i := range vals {
				ptrs[i] = &vals[i]
			}
			if err := rows.Scan(ptrs...); err != nil {
				return nil, err
			}
			out = append(out, vals)
		}
		return out, rows.Err()
	}
	oracle := map[string][][]any{}
	for _, q := range queries {
		oracle[q] = collect(oracleRun, q)
	}

	const clients = 8
	const rounds = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(ctx context.Context, id int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				q := queries[(id+r)%len(queries)]
				rows, err := c.Query(ctx, q)
				if err != nil {
					errs <- fmt.Errorf("client %d: %s: %w", id, q, err)
					return
				}
				var got [][]any
				ncols := len(rows.Columns())
				for rows.Next() {
					vals := make([]any, ncols)
					ptrs := make([]any, ncols)
					for j := range vals {
						ptrs[j] = &vals[j]
					}
					if err := rows.Scan(ptrs...); err != nil {
						errs <- err
						return
					}
					got = append(got, vals)
				}
				if err := rows.Close(); err != nil {
					errs <- fmt.Errorf("client %d: %s: %w", id, q, err)
					return
				}
				if fmt.Sprint(got) != fmt.Sprint(oracle[q]) {
					errs <- fmt.Errorf("client %d: %s:\n got %v\nwant %v", id, q, got, oracle[q])
					return
				}
			}
		}(ctx, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueueOverloadExact pins the admission math: with capacity K
// (workers + queue depth) fully gated, K+N concurrent queries produce
// exactly N ErrQueueFull rejections, and all K admitted queries
// complete with correct results — nothing in flight is dropped.
func TestQueueOverloadExact(t *testing.T) {
	ctx := context.Background()
	const workers, depth, extra = 1, 2, 3
	const capacity = workers + depth // K
	gate := make(chan struct{})
	addr, srv, db, _ := startServer(t, "", func(c *Config) {
		c.Workers = workers
		c.QueueDepth = depth
		c.testGate = gate
	})

	// Seed through the engine directly — client queries would block on
	// the armed gate.
	if _, err := db.Exec(ctx, `CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, `INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}

	type result struct {
		sum int64
		err error
	}
	results := make(chan result, capacity+extra)
	for i := 0; i < capacity+extra; i++ {
		go func(ctx context.Context) {
			c, err := client.Dial(addr)
			if err != nil {
				results <- result{0, err}
				return
			}
			defer c.Close()
			rows, err := c.Query(ctx, `SELECT sum(a) AS s FROM t`)
			if err != nil {
				results <- result{0, err}
				return
			}
			var s int64
			if !rows.Next() {
				results <- result{0, fmt.Errorf("no row: %v", rows.Err())}
				return
			}
			if err := rows.Scan(&s); err != nil {
				results <- result{0, err}
				return
			}
			if err := rows.Close(); err != nil {
				results <- result{0, err}
				return
			}
			results <- result{s, nil}
		}(ctx)
	}

	// Exactly N rejections arrive while the gate holds all K admitted
	// queries in the system.
	var rejected, succeeded int
	var firstErr error
	deadline := time.After(30 * time.Second)
	for rejected < extra {
		select {
		case r := <-results:
			if r.err == nil {
				t.Fatalf("query completed while gate closed (sum=%d)", r.sum)
			}
			if !errors.Is(r.err, client.ErrQueueFull) {
				t.Fatalf("rejection is not ErrQueueFull: %v", r.err)
			}
			rejected++
		case <-deadline:
			t.Fatalf("timed out with %d/%d rejections (admission counters: rejected=%d active=%d queued=%d)",
				rejected, extra, srv.rejectedQueue.Load(), srv.active.Load(), srv.queued.Load())
		}
	}
	// All K others are in the system: none rejected, none finished.
	waitFor(t, func() bool {
		return srv.active.Load()+srv.queued.Load() == capacity
	}, "K queries in system")
	if got := srv.rejectedQueue.Load(); got != extra {
		t.Fatalf("rejections = %d, want exactly %d", got, extra)
	}

	close(gate)
	for succeeded < capacity {
		select {
		case r := <-results:
			if r.err != nil {
				firstErr = r.err
				succeeded++
				continue
			}
			if r.sum != 6 {
				t.Fatalf("admitted query returned %d, want 6", r.sum)
			}
			succeeded++
		case <-deadline:
			t.Fatalf("timed out waiting for admitted queries: %d/%d", succeeded, capacity)
		}
	}
	if firstErr != nil {
		t.Fatalf("admitted query failed: %v", firstErr)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMemBudgetRejection: a query over a table bigger than the budget
// is rejected with ErrBudget; a small query still runs.
func TestMemBudgetRejection(t *testing.T) {
	ctx := context.Background()
	addr, srv, _, _ := startServer(t, "", func(c *Config) {
		c.MemBudget = 1 << 20
	})
	c := dial(t, addr)
	if _, err := c.Exec(ctx, `CREATE TABLE big (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, `CREATE TABLE small (a INT)`); err != nil {
		t.Fatal(err)
	}
	// ~2 MB of int column: 256 inserts x 1000 rows x 8 bytes.
	for i := 0; i < 256; i++ {
		sql := `INSERT INTO big VALUES (0)`
		for j := 1; j < 1000; j++ {
			sql += ", (1)"
		}
		if _, err := c.Exec(ctx, sql); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Exec(ctx, `INSERT INTO small VALUES (42)`); err != nil {
		t.Fatal(err)
	}

	_, err := c.Query(ctx, `SELECT count(*) AS n FROM big`)
	if !errors.Is(err, client.ErrBudget) {
		t.Fatalf("big query err = %v, want ErrBudget", err)
	}
	if srv.rejectedMem.Load() == 0 {
		t.Fatal("rejectedMem counter not bumped")
	}
	rows, err := c.Query(ctx, `SELECT a FROM small`)
	if err != nil {
		t.Fatalf("small query rejected: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelMidQuery cancels a streaming SELECT over the wire and
// checks the server stops it at a morsel boundary: the client sees
// ErrCanceled, and the connection remains usable afterwards.
func TestCancelMidQuery(t *testing.T) {
	ctx := context.Background()
	addr, _, _, _ := startServer(t, "", nil)
	c := dial(t, addr)
	if _, err := c.Exec(ctx, `CREATE TABLE wide (a INT, s TEXT)`); err != nil {
		t.Fatal(err)
	}
	// Enough data that the full result cannot fit in socket buffers:
	// 60k rows x ~40 bytes >> typical loopback buffering.
	for base := 0; base < 60000; base += 1000 {
		sql := `INSERT INTO wide VALUES `
		for i := 0; i < 1000; i++ {
			if i > 0 {
				sql += ", "
			}
			sql += fmt.Sprintf("(%d, 'row-value-%d-padding')", base+i, base+i)
		}
		if _, err := c.Exec(ctx, sql); err != nil {
			t.Fatal(err)
		}
	}

	qctx, cancel := context.WithCancel(ctx)
	rows, err := c.Query(qctx, `SELECT a, s FROM wide`)
	if err != nil {
		t.Fatal(err)
	}
	// Read a few rows to prove the stream is live, then cancel.
	for i := 0; i < 5; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended at row %d: %v", i, rows.Err())
		}
	}
	cancel()
	n := 5
	for rows.Next() {
		n++
	}
	err = rows.Err()
	if closeErr := rows.Close(); err == nil {
		err = closeErr
	}
	if !errors.Is(err, client.ErrCanceled) {
		t.Fatalf("after cancel: rows ended with %v (read %d rows), want ErrCanceled", err, n)
	}
	if n >= 60000 {
		t.Fatal("query ran to completion despite cancel")
	}

	// The session survives a canceled command.
	rows2, err := c.Query(ctx, `SELECT count(*) AS n FROM wide`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows2.Next() {
		t.Fatalf("no row: %v", rows2.Err())
	}
	var cnt int64
	if err := rows2.Scan(&cnt); err != nil {
		t.Fatal(err)
	}
	if err := rows2.Close(); err != nil {
		t.Fatal(err)
	}
	if cnt != 60000 {
		t.Fatalf("count = %d, want 60000", cnt)
	}
}

// TestShutdownDrain: during shutdown an in-flight streaming query
// completes, new connections are refused, and a durable (-d) database
// reopens clean afterwards.
func TestShutdownDrain(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	addr, _, _, stop := startServer(t, dir, nil)
	c := dial(t, addr)
	if _, err := c.Exec(ctx, `CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sql := `INSERT INTO t VALUES (0)`
		for j := 1; j < 1000; j++ {
			sql += fmt.Sprintf(", (%d)", j)
		}
		if _, err := c.Exec(ctx, sql); err != nil {
			t.Fatal(err)
		}
	}

	// Start streaming, then shut down mid-stream.
	rows, err := c.Query(ctx, `SELECT a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	shutdownDone := make(chan error, 1)
	go func(ctx context.Context) {
		sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		shutdownDone <- stop(sctx)
	}(ctx)

	// The in-flight stream must complete correctly (drain, not drop).
	n := 1
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("in-flight query dropped during drain: %v (after %d rows)", err, n)
	}
	if n != 20000 {
		t.Fatalf("drained stream returned %d rows, want 20000", n)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// New connections are refused post-drain.
	if _, err := client.Dial(addr); err == nil {
		t.Fatal("dial after shutdown must fail")
	}

	// The durable database reopens clean with all acknowledged data.
	db, err := engine.Open(engine.WithDir(dir))
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer db.Close()
	r, err := db.Query(ctx, `SELECT count(*) AS n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Next() {
		t.Fatalf("no row: %v", r.Err())
	}
	var cnt int64
	if err := r.Scan(&cnt); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if cnt != 20000 {
		t.Fatalf("recovered count = %d, want 20000", cnt)
	}
}

// TestHandshakeRejectsBadVersion: a client speaking an older protocol
// is refused in-band.
func TestHandshakeRejectsBadVersion(t *testing.T) {
	addr, _, _, _ := startServer(t, "", nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Raw Hello with version 0.
	if err := sendRawHello(nc, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := nc.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Read(buf); err != nil {
		t.Fatalf("expected an Err frame, got read error %v", err)
	}
	// Frame type 11 = Err.
	if buf[0] != 11 {
		t.Fatalf("reply frame type = %d, want Err(11)", buf[0])
	}
}
