package memgov

import (
	"errors"
	"sync"
	"testing"
)

func TestAcquireRelease(t *testing.T) {
	r := New(100, Reject)
	if err := r.Acquire(60); err != nil {
		t.Fatalf("acquire 60: %v", err)
	}
	if err := r.Acquire(50); !errors.Is(err, ErrExceeded) {
		t.Fatalf("acquire past limit: got %v, want ErrExceeded", err)
	}
	if err := r.Acquire(40); err != nil {
		t.Fatalf("acquire to exactly the limit: %v", err)
	}
	if got := r.Used(); got != 100 {
		t.Fatalf("Used = %d, want 100", got)
	}
	r.Release(100)
	if got := r.Used(); got != 0 {
		t.Fatalf("Used after release = %d, want 0", got)
	}
	if got := r.HighWater(); got != 100 {
		t.Fatalf("HighWater = %d, want 100", got)
	}
}

func TestNilReservation(t *testing.T) {
	var r *Reservation
	if err := r.Acquire(1 << 40); err != nil {
		t.Fatalf("nil reservation must grant everything: %v", err)
	}
	r.Release(1 << 40)
	if r.CanSpill() {
		t.Fatal("nil reservation must not ask for spilling")
	}
	if r.Used() != 0 || r.HighWater() != 0 || r.Limit() != 0 {
		t.Fatal("nil reservation accessors must be zero")
	}
}

func TestUnlimited(t *testing.T) {
	r := New(0, Reject)
	if err := r.Acquire(1 << 50); err != nil {
		t.Fatalf("unlimited reservation denied: %v", err)
	}
}

func TestPolicy(t *testing.T) {
	if New(10, Reject).CanSpill() {
		t.Fatal("Reject policy must not spill")
	}
	if !New(10, Spill).CanSpill() {
		t.Fatal("Spill policy must spill")
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	r := New(100, Reject)
	r.Release(50) // caller bug: nothing acquired
	if err := r.Acquire(100); err != nil {
		t.Fatalf("over-release minted budget: %v", err)
	}
}

func TestConcurrent(t *testing.T) {
	r := New(1000, Spill)
	var wg sync.WaitGroup
	var denied sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := r.Acquire(10); err != nil {
					denied.Store(w, true)
					continue
				}
				r.Release(10)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Used(); got != 0 {
		t.Fatalf("Used after balanced acquire/release = %d, want 0", got)
	}
	if hw := r.HighWater(); hw > 1000 {
		t.Fatalf("HighWater %d exceeded the limit", hw)
	}
}
