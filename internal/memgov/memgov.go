// Package memgov is the per-query memory governor: a Reservation is a
// ledger of execution-memory grants shared by every memory-hungry
// operator of one query (sort run buffers, grouping tables, join
// builds). Operators Acquire bytes before materializing them and
// Release when the memory is dropped mid-query; the query's total
// footprint therefore never exceeds the limit, replacing the server's
// old static referenced-table estimate with live accounting.
//
// The ledger is deliberately approximate — it charges the dominant
// allocations (row buffers, hash-table slot arrays, accumulator
// columns), not every transient — but it is conservative where it
// matters: a denied Acquire fires BEFORE the allocation it guards.
//
// What a denial means is the Policy's call: under Reject the operator
// propagates ErrExceeded and the query fails with a typed error; under
// Spill the operator degrades to its out-of-core strategy (external
// sort runs, grace-hash partitioning) and keeps going.
//
// A nil *Reservation is the ungoverned ledger: every method is
// nil-safe and Acquire always succeeds, so operators thread the
// pointer unconditionally and only governed queries pay.
package memgov

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrExceeded is the typed denial: the query's live execution memory
// would exceed its budget. Wrapped errors carry the attempted size and
// the limit; match with errors.Is.
var ErrExceeded = errors.New("memgov: query memory budget exceeded")

// Policy says what a denied Acquire should turn into.
type Policy int

const (
	// Reject fails the query with ErrExceeded.
	Reject Policy = iota
	// Spill lets operators degrade to disk instead of failing.
	Spill
)

// Reservation is one query's memory ledger. Workers of a parallel
// query share a single Reservation, so the cap bounds the QUERY, not
// each worker; all methods are safe for concurrent use and nil-safe.
type Reservation struct {
	limit  int64
	policy Policy
	used   atomic.Int64
	high   atomic.Int64 // high-water mark of used
}

// New returns a ledger capped at limit bytes (limit <= 0 means
// unlimited) with the given denial policy.
func New(limit int64, policy Policy) *Reservation {
	return &Reservation{limit: limit, policy: policy}
}

// Acquire reserves n bytes, or reports ErrExceeded (wrapped) if that
// would push the ledger past its limit. n <= 0 is a no-op.
func (r *Reservation) Acquire(n int64) error {
	if r == nil || n <= 0 {
		return nil
	}
	for {
		cur := r.used.Load()
		next := cur + n
		if r.limit > 0 && next > r.limit {
			return fmt.Errorf("%w: %d in use + %d requested > limit %d", ErrExceeded, cur, n, r.limit)
		}
		if r.used.CompareAndSwap(cur, next) {
			for {
				h := r.high.Load()
				if next <= h || r.high.CompareAndSwap(h, next) {
					return nil
				}
			}
		}
	}
}

// Release returns n bytes to the ledger. Releasing more than was
// acquired is a caller bug; the ledger clamps at zero rather than
// going negative so one bad release cannot mint budget.
func (r *Reservation) Release(n int64) {
	if r == nil || n <= 0 {
		return
	}
	if cur := r.used.Add(-n); cur < 0 {
		r.used.CompareAndSwap(cur, 0)
	}
}

// CanSpill reports whether a denied Acquire should degrade to disk
// (Policy Spill) rather than fail the query. Nil and ungoverned
// ledgers never ask for spilling.
func (r *Reservation) CanSpill() bool {
	return r != nil && r.policy == Spill
}

// Used returns the bytes currently reserved.
func (r *Reservation) Used() int64 {
	if r == nil {
		return 0
	}
	return r.used.Load()
}

// HighWater returns the maximum bytes ever simultaneously reserved.
func (r *Reservation) HighWater() int64 {
	if r == nil {
		return 0
	}
	return r.high.Load()
}

// Limit returns the byte cap (0 = unlimited).
func (r *Reservation) Limit() int64 {
	if r == nil {
		return 0
	}
	return r.limit
}
