package lint

// The analysistest-style harness: each analyzer has a fixture package
// under testdata/src/<name> whose lines carry `// want "regexp"`
// comments naming the diagnostics they must produce; lines without a
// want comment must stay silent. Fixtures import the real repro
// packages (bat, vector) — the analyzers match them by name — and get
// their hot-path/persistence scoping from the synthetic import path
// each test passes ("lintfixture/internal/radix" and friends).
//
// lint.Run deliberately skips files under a testdata directory, so the
// harness copies each fixture into a temp dir before type-checking it;
// want-comment line numbers are unaffected (the copy is byte-
// identical).

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var fixtureExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

// exportsForFixtures builds the importPath→exportData map fixtures
// type-check against: the whole repo plus the std packages fixtures
// import, straight out of `go list -export` (once per test binary).
func exportsForFixtures(t *testing.T) map[string]string {
	t.Helper()
	fixtureExports.once.Do(func() {
		listed, err := goList("../..", []string{"./...", "math", "os", "sync", "context", "net", "time"})
		if err != nil {
			fixtureExports.err = err
			return
		}
		m := make(map[string]string, len(listed))
		for _, p := range listed {
			if p.Export != "" {
				m[p.ImportPath] = p.Export
			}
		}
		fixtureExports.m = m
	})
	if fixtureExports.err != nil {
		t.Fatalf("loading export data: %v", fixtureExports.err)
	}
	return fixtureExports.m
}

// loadFixture copies testdata/src/<dir> into a temp dir and
// type-checks it under pkgPath.
func loadFixture(t *testing.T, dir, pkgPath string) *Package {
	t.Helper()
	src := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	var files []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(tmp, e.Name())
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, dst)
	}
	pkg, err := TypeCheck(pkgPath, files, exportsForFixtures(t))
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}
	return pkg
}

type wantKey struct {
	file string // base name
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var (
	wantLineRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantStrRe  = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// parseWants indexes every `// want "re" ["re" ...]` comment in the
// fixture sources by (file, line).
func parseWants(t *testing.T, dir string) map[wantKey][]*want {
	t.Helper()
	src := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[wantKey][]*want)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantLineRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := wantKey{e.Name(), i + 1}
			for _, q := range wantStrRe.FindAllString(m[1], -1) {
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", e.Name(), i+1, q, err)
				}
				out[key] = append(out[key], &want{re: regexp.MustCompile(s)})
			}
		}
	}
	return out
}

// runFixture runs analyzers over the fixture and checks the
// diagnostics against its want comments, both directions.
func runFixture(t *testing.T, analyzers []*Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, pkgPath)
	wants := parseWants(t, dir)
	for _, d := range Run(pkg, analyzers) {
		key := wantKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		text := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", key.file, key.line, text)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.re)
			}
		}
	}
}

func TestNilSentinelFixture(t *testing.T) {
	runFixture(t, []*Analyzer{NilSentinel}, "nilsentinel", "lintfixture/nil")
}

func TestLockedCallFixture(t *testing.T) {
	runFixture(t, []*Analyzer{LockedCall}, "lockedcall", "lintfixture/locked")
}

func TestWALCheckFixture(t *testing.T) {
	runFixture(t, []*Analyzer{WALCheck}, "walcheck", "lintfixture/internal/sqlfe")
}

func TestWALCheckSpillFixture(t *testing.T) {
	runFixture(t, []*Analyzer{WALCheck}, "walcheckspill", "lintfixture/internal/spill")
}

// The spill receiver rules are type-scoped and fire anywhere, but the
// os rule is path-scoped: the same sources outside the persistence
// layer must not report the os.Remove calls.
func TestWALCheckSpillOSRuleScoped(t *testing.T) {
	pkg := loadFixture(t, "walcheckspill", "lintfixture/other")
	for _, d := range Run(pkg, []*Analyzer{WALCheck}) {
		if strings.Contains(d.Message, "os.Remove") {
			t.Fatalf("os rule fired outside the persistence layer: %v", d)
		}
	}
}

func TestHotPathMapFixture(t *testing.T) {
	runFixture(t, []*Analyzer{HotPathMap}, "hotpathmap", "lintfixture/internal/radix")
}

func TestCtxMorselFixture(t *testing.T) {
	runFixture(t, []*Analyzer{CtxMorsel}, "ctxmorsel", "lintfixture/ctx")
}

func TestNetCheckFixture(t *testing.T) {
	runFixture(t, []*Analyzer{NetCheck}, "netcheck", "lintfixture/internal/server")
}

// netcheck is scoped to the server and client packages; the same
// sources under an unrelated import path must produce nothing.
func TestNetCheckStaysSilentElsewhere(t *testing.T) {
	pkg := loadFixture(t, "netcheck", "lintfixture/other")
	if diags := Run(pkg, []*Analyzer{NetCheck}); len(diags) != 0 {
		t.Fatalf("netcheck outside server/client reported %d diagnostics, want 0: %v", len(diags), diags)
	}
}

// A package off the hot paths and outside the persistence layer may
// use maps and best-effort os calls freely.
func TestPathScopedAnalyzersStaySilentElsewhere(t *testing.T) {
	runFixture(t, []*Analyzer{HotPathMap, WALCheck}, "otherpkg", "lintfixture/other")
}

// The bat package defines the sentinels; nilsentinel must exempt it.
// Reuse the nilsentinel fixture under a bat-suffixed import path: the
// same sources that produce diagnostics above must produce none here.
func TestNilSentinelExemptsBatPackage(t *testing.T) {
	pkg := loadFixture(t, "nilsentinel", "lintfixture/internal/bat")
	if diags := Run(pkg, []*Analyzer{NilSentinel}); len(diags) != 0 {
		t.Fatalf("nilsentinel inside internal/bat reported %d diagnostics, want 0: %v", len(diags), diags)
	}
}

// An ignore directive without a justification is itself reported, and
// silences nothing.
func TestSuppressionRequiresJustification(t *testing.T) {
	pkg := loadFixture(t, "unjustified", "lintfixture/unjustified")
	diags := Run(pkg, []*Analyzer{NilSentinel})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (bare directive + unsuppressed violation): %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "without a justification") {
		t.Errorf("first diagnostic = %v, want the bare-directive report", diags[0])
	}
	if diags[1].Analyzer != "nilsentinel" {
		t.Errorf("second diagnostic = %v, want the still-live nilsentinel report", diags[1])
	}
}
