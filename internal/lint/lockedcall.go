package lint

import (
	"go/ast"
	"strings"
)

// LockedCall enforces the db.mu protocol from PR 6: functions whose
// name ends in "Locked" (snapshotLocked, taintLocked, saveLocked,
// applyOpLocked, vacuumTableLocked, ...) document that the caller
// holds the owning mutex. Log order equals apply order only while that
// holds, so a *Locked call from an unlocked context is a silent
// corruption path, not a crash.
//
// The check is lexical dataflow within one function: a call to
// fooLocked is legal when the enclosing function (a) itself ends in
// "Locked" — its own caller holds the lock — or (b) contains a
// `<expr>.Lock()` call textually before the *Locked call. Function
// literals do not inherit their enclosing function's lock: a closure
// typically outlives the critical section (goroutines, defers), so a
// FuncLit must take the lock itself or carry a justified suppression.
var LockedCall = &Analyzer{
	Name: "lockedcall",
	Doc:  "*Locked functions may only be called while the owning mutex is held",
	Run:  runLockedCall,
}

func runLockedCall(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !strings.HasSuffix(name, "Locked") {
				return true
			}
			funcs := enclosingFuncs(f, call.Pos())
			if len(funcs) == 0 {
				return true // package-level var initializer; no lock to hold
			}
			innermost := funcs[len(funcs)-1]
			if decl, ok := innermost.(*ast.FuncDecl); ok {
				if strings.HasSuffix(decl.Name.Name, "Locked") {
					return true
				}
			}
			if locksBefore(innermost, call) {
				return true
			}
			p.Reportf(call.Pos(), "%s called without holding the mutex: take <mu>.Lock() first or call from a *Locked function", name)
			return true
		})
	}
}

// calleeName extracts the called function's bare name.
func calleeName(call *ast.CallExpr) string {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// locksBefore reports whether fn's body contains a `<expr>.Lock()`
// call positioned before target. An intervening Unlock() before the
// target does NOT reset the check — the common shape here is
// Lock + defer Unlock, and finer lifetimes are what suppressions with
// justification are for.
func locksBefore(fn ast.Node, target *ast.CallExpr) bool {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || (n != nil && n.Pos() >= target.Pos()) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" && len(call.Args) == 0 {
			// Don't credit a Lock inside a nested FuncLit that merely
			// appears earlier in the source: it runs on its own schedule.
			if !insideNestedFuncLit(body, call, target) {
				found = true
			}
		}
		return !found
	})
	return found
}

// insideNestedFuncLit reports whether call sits in a FuncLit nested in
// body that does not also contain the target.
func insideNestedFuncLit(body *ast.BlockStmt, call, target *ast.CallExpr) bool {
	nested := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || nested {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			containsCall := call.Pos() >= lit.Pos() && call.End() <= lit.End()
			containsTarget := target.Pos() >= lit.Pos() && target.End() <= lit.End()
			if containsCall && !containsTarget {
				nested = true
				return false
			}
		}
		return true
	})
	return nested
}
