package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// The loader type-checks packages from source with their dependencies
// imported from gc export data, which `go list -export` produces out
// of the build cache. This is the same shape the `go vet` unitchecker
// protocol hands cmd/lintmonet (a config with a PackageFile map); here
// we build that map ourselves so the suite can run standalone and in
// tests without golang.org/x/tools.

type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// goList runs `go list -deps -export -json` on patterns in dir and
// returns the decoded package stream.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts an importPath→exportFile map to the gc
// importer's lookup signature.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// TypeCheck parses and type-checks one package from its source files,
// importing dependencies through exports.
func TypeCheck(pkgPath string, filenames []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := &types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", pkgPath, err)
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// LoadPackages loads, from dir, every package matching patterns
// (./... style), type-checked and ready for Run. Dependencies are
// loaded as export data only, never analyzed.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		exports[p.ImportPath] = p.Export
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := TypeCheck(p.ImportPath, files, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
