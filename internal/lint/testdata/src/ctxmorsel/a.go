// Fixture for the ctxmorsel analyzer: every vector.Exchange must carry
// a Ctx, set in the literal or assigned before use.
package fixture

import (
	"context"

	"repro/internal/vector"
)

func bad(src *vector.Source) *vector.Exchange {
	return &vector.Exchange{Source: src, Workers: 2} // want "built without Ctx"
}

func good(ctx context.Context, src *vector.Source) *vector.Exchange {
	return &vector.Exchange{Source: src, Workers: 2, Ctx: ctx} // ok: Ctx in the literal
}

func twoStep(ctx context.Context, src *vector.Source) *vector.Exchange {
	ex := &vector.Exchange{Source: src} // ok: Ctx assigned below
	ex.Ctx = ctx
	return ex
}

func justified(src *vector.Source) *vector.Exchange {
	//lint:ignore ctxmorsel bounded fixture plan with no cancellation surface
	return &vector.Exchange{Source: src}
}
