// Fixture for the nilsentinel analyzer: raw NaN tests and raw int-nil
// literals must go through the bat sentinels.
package fixture

import (
	"math"

	"repro/internal/bat"
)

func floats(x, y float64, col []float64) bool {
	if x != x { // want "float self-comparison is a raw NaN test"
		return true
	}
	if col[0] == col[0] { // want "float self-comparison is a raw NaN test"
		return false
	}
	if x == bat.NilFloat() { // want "NaN never compares equal"
		return true
	}
	if x != math.NaN() { // want "NaN never compares equal"
		return true
	}
	if bat.IsNilFloat(x) { // ok: the blessed spelling
		return true
	}
	return x == y // ok: different operands
}

func ints(i int64) bool {
	if i == i { // ok: int self-comparison is not a NaN test
		_ = i
	}
	bad := int64(-9223372036854775808) // want "spell the int nil sentinel as bat.NilInt"
	worse := int64(math.MinInt64)      // want "math.MinInt64 used outside internal/bat"
	good := bat.NilInt                 // ok: the blessed spelling
	return bad == worse && good == i
}

func suppressed(x float64) bool {
	//lint:ignore nilsentinel exercising the suppression machinery
	return x != x
}
