// Fixture for the walcheck analyzer: durability-path errors must be
// checked. The package is named sqlfe and sits under a path ending in
// internal/sqlfe, so both the DB-receiver rule and the persistence-
// layer os rule are active.
package sqlfe

import "os"

type DB struct{}

func (*DB) Close() error      { return nil }
func (*DB) Checkpoint() error { return nil }

type flusher struct{}

func (flusher) Sync() error                      { return nil }
func (flusher) AppendTx(x []int) (uint64, error) { return 0, nil }

func bad(db *DB, f flusher) {
	db.Close()             // want "Close error discarded"
	defer db.Checkpoint()  // want "Checkpoint error discarded"
	f.Sync()               // want "Sync error discarded"
	_, _ = f.AppendTx(nil) // want "AppendTx error assigned to _"
	_ = db.Close()         // want "Close error assigned to _"
	os.Remove("x")         // want "os.Remove error discarded"
	os.RemoveAll("x")      // want "os.RemoveAll error discarded"
}

func good(db *DB, f flusher) error {
	if err := db.Close(); err != nil { // ok: checked
		return err
	}
	if err := os.Rename("a", "b"); err != nil { // ok: checked
		return err
	}
	lsn, err := f.AppendTx(nil) // ok: error captured
	_ = lsn
	return err
}

type other struct{}

func (other) Close() error { return nil }

func okNonOwner(o other) {
	o.Close() // ok: not a durability-owning type
}

func justified() {
	//lint:ignore walcheck best-effort cleanup, a failure here cannot lose committed state
	os.Remove("tmp")
}
