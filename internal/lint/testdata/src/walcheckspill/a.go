// Fixture for the walcheck analyzer's spill rules (PR 9): spill-path
// errors decide the owning query's outcome — a dropped write error
// decodes into wrong results, a dropped cleanup error leaks disk — so
// they must be checked. The fixture imports the real spill package
// (the receiver rules match the defining package's name) and sits
// under a path ending in internal/spill so the persistence-layer os
// rule is active too.
package consumer

import (
	"os"

	"repro/internal/spill"
	"repro/internal/vector"
	"repro/internal/wal"
)

func bad(sc *spill.Scope, w *spill.Writer, b *vector.Batch, fs wal.FS) {
	w.WriteBatch(b)        // want "WriteBatch error discarded"
	defer sc.Cleanup()     // want "Cleanup error discarded"
	w.Finish()             // want "Finish error discarded"
	_ = w.WriteBatch(b)    // want "WriteBatch error assigned to _"
	_, _ = w.Finish()      // want "Finish error assigned to _"
	_ = sc.Cleanup()       // want "Cleanup error assigned to _"
	spill.Sweep(fs, "dir") // want "spill.Sweep error discarded"
	os.Remove("orphan")    // want "os.Remove error discarded"
}

func good(sc *spill.Scope, w *spill.Writer, b *vector.Batch, fs wal.FS) error {
	if err := w.WriteBatch(b); err != nil { // ok: checked
		return err
	}
	f, err := w.Finish() // ok: error captured
	if err != nil {
		return err
	}
	_ = f
	if _, err := spill.Sweep(fs, "dir"); err != nil { // ok: checked
		return err
	}
	return sc.Cleanup() // ok: returned
}

// Same-named methods on a non-spill type stay silent: the rule matches
// the defining package, not the method name alone.
type other struct{}

func (other) WriteBatch(*vector.Batch) error { return nil }
func (other) Finish() error                  { return nil }
func (other) Cleanup() error                 { return nil }

func okNonSpill(o other, b *vector.Batch) {
	o.WriteBatch(b) // ok: not a spill type
	o.Finish()      // ok
	o.Cleanup()     // ok
}

func justified() {
	//lint:ignore walcheck best-effort cleanup of a temp probe file; committed state is elsewhere
	os.Remove("tmp")
}
