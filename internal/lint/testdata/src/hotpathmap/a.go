// Fixture for the hotpathmap analyzer: the package path ends in
// internal/radix, so Go maps and range-over-map are banned.
package radix

type cache struct {
	m map[string]int // want "map type on a hot path"
}

func build(keys []int64) int {
	idx := make(map[int64]int, len(keys)) // want "map type on a hot path"
	for i, k := range keys {              // ok: range over a slice
		idx[k] = i
	}
	n := 0
	for range idx { // want "range over a map on a hot path"
		n++
	}
	return n
}

func ok(keys []int64) int {
	n := 0
	for range keys { // ok: slice iteration
		n++
	}
	return n
}
