// Fixture for the netcheck analyzer: connection write/close errors
// must be checked, and goroutines must carry a context. The package
// sits under a path ending in internal/server, so both rules are
// active.
package server

import (
	"context"
	"net"
	"time"

	"repro/internal/server/wire"
)

func badDiscards(nc net.Conn, ln net.Listener) {
	nc.Close()                                // want "Close error discarded"
	ln.Close()                                // want "Close error discarded"
	nc.SetDeadline(time.Time{})               // want "SetDeadline error discarded"
	nc.SetReadDeadline(time.Time{})           // want "SetReadDeadline error discarded"
	defer nc.SetWriteDeadline(time.Time{})    // want "SetWriteDeadline error discarded"
	nc.Write([]byte("x"))                     // want "Write error discarded"
	_, _ = nc.Write([]byte("x"))              // want "Write error assigned to _"
	_ = nc.Close()                            // want "Close error assigned to _"
	wire.Send(nc, wire.Err{})                 // want "wire.Send error discarded"
	_ = wire.WriteFrame(nc, wire.THello, nil) // want "wire.WriteFrame error assigned to _"
}

func badGo(nc net.Conn) {
	go serveLoop(nc) // want "goroutine launched without a context.Context argument"
	go func() {}()   // want "goroutine launched without a context.Context argument"
}

func serveLoop(nc net.Conn) {}

func good(ctx context.Context, nc net.Conn) error {
	go func(ctx context.Context, nc net.Conn) {}(ctx, nc) // ok: ctx passed explicitly
	go serveCtx(ctx, nc)                                  // ok: ctx passed explicitly
	if err := nc.SetDeadline(time.Time{}); err != nil {   // ok: checked
		return err
	}
	if _, err := nc.Write([]byte("x")); err != nil { // ok: checked
		return err
	}
	if err := wire.Send(nc, wire.Err{}); err != nil { // ok: checked
		return err
	}
	return nc.Close() // ok: returned
}

func serveCtx(ctx context.Context, nc net.Conn) {}

// A non-connection type with the same method names stays silent.
type sink struct{}

func (sink) Close() error       { return nil }
func (sink) Write([]byte) error { return nil }

func okNonConn(s sink) {
	s.Close()    // ok: not a net type
	s.Write(nil) // ok: not a net type
}

func justified(nc net.Conn) {
	//lint:ignore netcheck best-effort reject on a connection that is being torn down either way
	_ = nc.Close()
}
