// Fixture for the suppression machinery: an ignore directive without a
// justification is itself a violation, and does not silence anything.
package fixture

func raw(x float64) bool {
	//lint:ignore nilsentinel
	return x != x
}
