// Negative fixture: a package that is neither on a hot path nor in
// the persistence layer. Maps and unchecked os calls are fine here —
// hotpathmap and walcheck's os rule must stay silent.
package fixture

import "os"

func untracked(keys []string) map[string]int {
	idx := make(map[string]int, len(keys)) // ok: not a hot-path package
	for i, k := range keys {
		idx[k] = i
	}
	for range idx { // ok: not a hot-path package
		break
	}
	os.Remove("scratch") // ok: not the persistence layer
	return idx
}
