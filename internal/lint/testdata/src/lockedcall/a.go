// Fixture for the lockedcall analyzer: *Locked helpers require the
// owning mutex, established lexically or by a *Locked enclosing
// function; function literals never inherit the lock.
package fixture

import "sync"

type store struct {
	mu   sync.Mutex
	vals []int
}

func (s *store) appendLocked(v int) { s.vals = append(s.vals, v) }

func (s *store) Add(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(v) // ok: lock taken above
}

func (s *store) AddBroken(v int) {
	s.appendLocked(v) // want "appendLocked called without holding the mutex"
}

func (s *store) drainLocked() []int {
	s.appendLocked(0) // ok: the enclosing function is itself *Locked
	return s.vals
}

func (s *store) AddAsync(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.appendLocked(v) // want "appendLocked called without holding the mutex"
	}()
}

func (s *store) AddOwnLock(v int) {
	f := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.appendLocked(v) // ok: the literal takes the lock itself
	}
	f()
}

func (s *store) AddJustified(v int) {
	//lint:ignore lockedcall single-threaded construction, no concurrent access yet
	s.appendLocked(v)
}
