// Package lint is the engine's custom static-analysis suite: the
// hand-rolled invariants that six PRs of review comments used to guard
// ("never compare a float to the NaN sentinel directly", "*Locked
// helpers run under db.mu", "durability errors are never discarded",
// "no Go maps on the radix/vector/batalg hot paths", "every Exchange
// carries a context") encoded as machine-checked analyzers.
//
// The framework is a deliberately small, dependency-free subset of
// golang.org/x/tools/go/analysis (which this module cannot vendor):
// an Analyzer inspects one type-checked package through a Pass and
// reports Diagnostics. cmd/lintmonet drives the suite either
// standalone (lintmonet ./...) or as a `go vet -vettool` unitchecker,
// which is how CI runs it over the whole repository.
//
// Suppressions: a comment of the form
//
//	//lint:ignore <analyzer> <justification>
//
// on the offending line, or on the line directly above it, silences
// that analyzer for that line. The justification is mandatory — an
// ignore directive without one is itself reported, so every
// intentional violation carries its reason in the source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:ignore
	Doc  string // one-line description of the invariant it encodes
	Run  func(*Pass)
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // test files (_test.go) are excluded
	Pkg      *types.Package
	Info     *types.Info

	diags       *[]Diagnostic
	suppression map[suppressKey]*suppressDirective
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a violation at pos unless a justified
// //lint:ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if dir := p.suppressed(position); dir != nil {
		dir.used = true
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe p.Info.Types lookup.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

type suppressDirective struct {
	pos    token.Position
	reason string
	used   bool
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s*(.*)$`)

// scanSuppressions indexes every //lint:ignore directive in the files.
// A directive on line L covers diagnostics on L and L+1 (the usual
// placement is the line above the violation).
func scanSuppressions(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) map[suppressKey]*suppressDirective {
	out := make(map[suppressKey]*suppressDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(m[2])
				if reason == "" {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  fmt.Sprintf("//lint:ignore %s directive without a justification", m[1]),
					})
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					d := &suppressDirective{pos: pos, reason: reason}
					out[suppressKey{pos.Filename, pos.Line, name}] = d
					out[suppressKey{pos.Filename, pos.Line + 1, name}] = d
				}
			}
		}
	}
	return out
}

func (p *Pass) suppressed(pos token.Position) *suppressDirective {
	if d, ok := p.suppression[suppressKey{pos.Filename, pos.Line, p.Analyzer.Name}]; ok {
		return d
	}
	return nil
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run executes the analyzers over pkg and returns the surviving
// diagnostics, sorted by position. Files ending in _test.go and files
// under a testdata directory never produce diagnostics: the invariants
// guard production code, and tests legitimately poke at internals.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") || strings.Contains(name, "/testdata/") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil
	}
	supp := scanSuppressions(pkg.Fset, files, &diags)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       files,
			Pkg:         pkg.Pkg,
			Info:        pkg.Info,
			diags:       &diags,
			suppression: supp,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NilSentinel,
		LockedCall,
		WALCheck,
		HotPathMap,
		CtxMorsel,
		NetCheck,
	}
}

// pathHasSuffix reports whether an import path ends in suffix at a
// path-segment boundary ("repro/internal/bat" has suffix
// "internal/bat" but "internal/combat" does not).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// enclosingFuncs returns the stack of enclosing function nodes
// (FuncDecl or FuncLit), innermost last, for the node at pos.
func enclosingFuncs(f *ast.File, pos token.Pos) []ast.Node {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == nil
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			stack = append(stack, n)
		}
		return true
	})
	return stack
}
