package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilSentinel enforces the nil-sentinel discipline from PRs 2–3: the
// float NULL is the canonical NaN, which compares unequal to
// everything — so `x == bat.NilFloat()` is ALWAYS false and `x != x`
// is an unreadable raw NaN test. Both must go through bat.IsNilFloat.
// Likewise the int NULL is bat.NilInt; a raw -9223372036854775808 (or
// math.MinInt64) literal standing in for it hides the sentinel from
// readers and from this checker.
//
// The bat package itself is exempt: it defines the sentinels.
var NilSentinel = &Analyzer{
	Name: "nilsentinel",
	Doc:  "NaN/float-nil comparisons must use bat.IsNilFloat; int nils must spell bat.NilInt",
	Run:  runNilSentinel,
}

func runNilSentinel(p *Pass) {
	if pathHasSuffix(p.Pkg.Path(), "internal/bat") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				p.checkNilCompare(n)
			case *ast.UnaryExpr:
				if n.Op == token.SUB {
					if lit, ok := n.X.(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value == "9223372036854775808" {
						p.Reportf(n.Pos(), "raw -9223372036854775808 literal: spell the int nil sentinel as bat.NilInt")
					}
				}
			case *ast.SelectorExpr:
				if isPkgSel(p, n, "math", "MinInt64") {
					p.Reportf(n.Pos(), "math.MinInt64 used outside internal/bat: if this means the int nil sentinel, spell it bat.NilInt")
				}
			}
			return true
		})
	}
}

func (p *Pass) checkNilCompare(e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	// x == x / x != x on a float operand is a raw NaN (float nil) test.
	if isFloat(p.TypeOf(e.X)) && sameExpr(e.X, e.Y) {
		p.Reportf(e.Pos(), "float self-comparison is a raw NaN test: use bat.IsNilFloat(%s)", types.ExprString(e.X))
		return
	}
	// Comparing against bat.NilFloat() or math.NaN() is silently wrong:
	// NaN compares unequal to everything, including itself.
	for _, side := range []ast.Expr{e.X, e.Y} {
		if call, ok := unparen(side).(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if isPkgSel(p, sel, "bat", "NilFloat") || isPkgSel(p, sel, "math", "NaN") {
					p.Reportf(e.Pos(), "comparison with %s is always %v (NaN never compares equal): use bat.IsNilFloat", types.ExprString(side), e.Op == token.NEQ)
					return
				}
			}
		}
	}
}

// isPkgSel reports whether sel is a reference to <pkgName>.<name>,
// where pkgName is the package's short name (matching by name, not
// path, so testdata stubs and the real package both match).
func isPkgSel(p *Pass, sel *ast.SelectorExpr, pkgName, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == pkgName
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameExpr reports whether two expressions are syntactically
// identical simple expressions (idents, selectors, index expressions)
// — the shapes the raw-NaN-test idiom takes.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func sameExpr(a, b ast.Expr) bool {
	a, b = unparen(a), unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameExpr(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(x.X, y.X) && sameExpr(x.Index, y.Index)
	case *ast.BasicLit:
		y, ok := b.(*ast.BasicLit)
		return ok && x.Kind == y.Kind && x.Value == y.Value
	}
	return false
}
