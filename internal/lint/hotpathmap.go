package lint

import (
	"go/ast"
	"go/types"
)

// HotPathMap guards the PR 1/4 performance wins: the Go map in the
// join hash table (PR 1) and in grouping (PR 4) was deliberately
// replaced by cache-conscious open-addressing tables in internal/radix
// (7.3x join build, 3.0x grouping, 575→16 allocs). A map creeping back
// into internal/radix, internal/vector, or internal/batalg regresses
// those numbers silently — no test fails, the benchmarks just drift.
//
// Flags every map[...]... composite type (declarations, make calls,
// literals, struct fields, signatures) and every range over a
// map-typed value in those packages' non-test files.
var HotPathMap = &Analyzer{
	Name: "hotpathmap",
	Doc:  "no Go maps on the radix/vector/batalg hot paths (open-addressing tables replaced them)",
	Run:  runHotPathMap,
}

var hotPathPkgs = []string{
	"internal/radix",
	"internal/vector",
	"internal/batalg",
}

func runHotPathMap(p *Pass) {
	hot := false
	for _, suffix := range hotPathPkgs {
		if pathHasSuffix(p.Pkg.Path(), suffix) {
			hot = true
			break
		}
	}
	if !hot {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.MapType:
				p.Reportf(n.Pos(), "map type on a hot path: use the open-addressing tables in internal/radix (GroupTable/Table) instead")
			case *ast.RangeStmt:
				if t := p.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						p.Reportf(n.Pos(), "range over a map on a hot path: iteration order is random and the map itself regresses the open-addressing design")
					}
				}
			}
			return true
		})
	}
}
