package lint

import (
	"go/ast"
	"go/types"
)

// CtxMorsel enforces the PR 3 cancellation contract: queries are
// canceled at MORSEL boundaries — the MorselCursor stops handing out
// morsels once its context is done, and every worker loop that
// iterates MorselScan/MorselCursor winds down at its next claim. That
// only works if the Exchange driving the cursor carries the context:
// an Exchange built without Ctx produces a query that cannot be
// canceled at all (Ctrl-C in monetlite, ctx in Conn.Query — both dead).
//
// Flags every vector.Exchange composite literal whose element list
// does not set Ctx, unless the enclosing function later assigns
// `<x>.Ctx = ...`. Bounded helpers that genuinely never need
// cancellation (benchmark entry points) carry a //lint:ignore
// ctxmorsel justification.
var CtxMorsel = &Analyzer{
	Name: "ctxmorsel",
	Doc:  "every vector.Exchange must carry a Ctx so cancellation reaches morsel boundaries",
	Run:  runCtxMorsel,
}

func runCtxMorsel(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if !isExchangeType(p, lit) {
				return true
			}
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Ctx" {
						return true
					}
				}
			}
			if ctxAssignedLater(f, lit) {
				return true
			}
			p.Reportf(lit.Pos(), "vector.Exchange built without Ctx: cancellation cannot reach morsel boundaries; set Ctx (or justify with //lint:ignore ctxmorsel)")
			return true
		})
	}
}

// isExchangeType reports whether lit constructs the morsel-parallel
// Exchange type from internal/vector (matched by type name and
// package name, so in-package uses and importers both qualify).
func isExchangeType(p *Pass, lit *ast.CompositeLit) bool {
	t := p.TypeOf(lit)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Exchange" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "vector"
}

// ctxAssignedLater reports whether the function enclosing lit assigns
// to some `.Ctx` field after the literal — the two-step construction
// `ex := &Exchange{...}; ex.Ctx = ctx`.
func ctxAssignedLater(f *ast.File, lit *ast.CompositeLit) bool {
	funcs := enclosingFuncs(f, lit.Pos())
	if len(funcs) == 0 {
		return false
	}
	assigned := false
	ast.Inspect(funcs[len(funcs)-1], func(n ast.Node) bool {
		if assigned {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() < lit.End() {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Ctx" {
				assigned = true
			}
		}
		return !assigned
	})
	return assigned
}
