package lint

import (
	"go/ast"
	"go/types"
)

// NetCheck enforces the serving-layer discipline from PR 8. The
// session executor is the single writer to its connection, and the
// protocol has exactly one terminator frame (Done or Err) per command
// — a silently dropped write error desynchronizes the stream and the
// client hangs waiting for a terminator that was never sent. Likewise
// a session goroutine launched without the server's context outlives
// Shutdown and keeps the drain from ever completing.
//
// Two rules, both scoped to the server package (import path suffix
// internal/server) and the public client package (suffix client):
//
//   - The error result of Write, Close, SetDeadline, SetReadDeadline
//     or SetWriteDeadline on a net or crypto/tls type, or of any
//     error-returning function in the wire package (Send, WriteFrame),
//     must not be discarded — not as an expression statement, not
//     under defer/go, not assigned to the blank identifier.
//     Deliberate best-effort sends carry //lint:ignore netcheck with a
//     justification.
//
//   - In internal/server every `go` statement must pass a
//     context.Context argument explicitly, so the goroutine's
//     lifetime is tied to the server's and SIGTERM drain can reach it.
var NetCheck = &Analyzer{
	Name: "netcheck",
	Doc:  "connection write/close errors must be checked and server goroutines must carry a context",
	Run:  runNetCheck,
}

// connMethods are flagged when the receiver is a net or crypto/tls type.
var connMethods = map[string]bool{
	"Write":            true,
	"Close":            true,
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

func runNetCheck(p *Pass) {
	inServer := pathHasSuffix(p.Pkg.Path(), "internal/server")
	inClient := pathHasSuffix(p.Pkg.Path(), "client")
	if !inServer && !inClient {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = unparen(n.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				if inServer && !p.passesContext(n.Call) {
					p.Reportf(n.Pos(), "goroutine launched without a context.Context argument; pass the server ctx so drain can reach it")
				}
				call = n.Call
			case *ast.AssignStmt:
				p.checkNetBlankAssign(n)
				return true
			}
			if call == nil {
				return true
			}
			if name, why := p.netCall(call); name != "" {
				p.Reportf(call.Pos(), "%s error discarded: %s", name, why)
			}
			return true
		})
	}
}

// checkNetBlankAssign flags `_ = call()` and `x, _ := call()` shapes
// where the blank identifier swallows a connection-write error.
func (p *Pass) checkNetBlankAssign(n *ast.AssignStmt) {
	if len(n.Rhs) == 0 {
		return
	}
	if len(n.Rhs) == 1 {
		call, ok := unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		if name, why := p.netCall(call); name != "" {
			if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
				p.Reportf(n.Pos(), "%s error assigned to _: %s", name, why)
			}
		}
		return
	}
	for i, rhs := range n.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(n.Lhs) {
			continue
		}
		if name, why := p.netCall(call); name != "" {
			if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				p.Reportf(n.Pos(), "%s error assigned to _: %s", name, why)
			}
		}
	}
}

// netCall classifies call; it returns the display name and the reason
// the error matters, or "" when the call is not connection-bearing or
// returns no error.
func (p *Pass) netCall(call *ast.CallExpr) (string, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if !p.returnsError(call) {
		return "", ""
	}
	// Package-qualified function call into the wire package: Send and
	// WriteFrame carry the connection-write error.
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if pkg, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
			if pkg.Name() == "wire" {
				return "wire." + name, "a lost frame write desynchronizes the protocol stream"
			}
			return "", ""
		}
	}
	if connMethods[name] && p.recvIsNetType(sel) {
		return name, "a connection error here leaves the peer waiting on a stream that will never terminate"
	}
	return "", ""
}

// recvIsNetType reports whether the method receiver is a named type
// from the net or crypto/tls packages (net.Conn, net.Listener,
// net.TCPConn, tls.Conn, ...).
func (p *Pass) recvIsNetType(sel *ast.SelectorExpr) bool {
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "net", "crypto/tls":
		return true
	}
	return false
}

// passesContext reports whether any argument of call has static type
// context.Context.
func (p *Pass) passesContext(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextType(p.TypeOf(arg)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
