package lint

import (
	"go/ast"
	"go/types"
)

// WALCheck enforces the durability-error discipline from PR 6: an
// error from the WAL/checkpoint path is a broken durability promise
// and must be routed to the taint/poison path — never discarded. The
// fsyncgate lesson (and the PR 6 review's durability-taint fix) is
// that a dropped fsync error silently acknowledges commits the disk
// never saw.
//
// Flagged calls, when their error result is discarded (expression
// statement, defer/go statement, or assigned to the blank
// identifier):
//
//   - AppendTx, WaitDurable, Sync, Fsync — on any receiver: these are
//     the fsync-bearing operations wherever they appear.
//   - Close, Truncate, Checkpoint, Vacuum, Save — when the receiver is
//     a durability-owning type: wal.Log, the engine DB, or the sqlfe
//     DB (Close checkpoints; Truncate discards the log).
//   - os.Remove / os.RemoveAll / os.Rename — inside internal/sqlfe,
//     internal/wal, and internal/spill only (the persistence layer,
//     where a failed rename is a failed commit point). Best-effort
//     cleanup sites carry a //lint:ignore walcheck justification.
//   - WriteBatch, Finish, Cleanup — when the receiver is a type from
//     the spill package, plus the package-level spill.Sweep: a dropped
//     spill-write error decodes into wrong query results, and a
//     dropped Cleanup/Sweep error leaks disk (PR 9's out-of-core
//     layer).
var WALCheck = &Analyzer{
	Name: "walcheck",
	Doc:  "durability-path errors (WAL append/fsync/checkpoint) must be checked, never discarded",
	Run:  runWALCheck,
}

// fsyncBearing methods are flagged on any receiver type.
var fsyncBearing = map[string]bool{
	"AppendTx":    true,
	"WaitDurable": true,
	"Sync":        true,
	"Fsync":       true,
}

// durabilityOwner methods are flagged only on the durability-owning
// named types.
var durabilityOwner = map[string]bool{
	"Close":      true,
	"Truncate":   true,
	"Checkpoint": true,
	"Vacuum":     true,
	"Save":       true,
}

// spillBearing methods are flagged when the receiver is a type from
// the spill package (any import path whose package is named spill).
var spillBearing = map[string]bool{
	"WriteBatch": true,
	"Finish":     true,
	"Cleanup":    true,
}

func runWALCheck(p *Pass) {
	inPersistLayer := pathHasSuffix(p.Pkg.Path(), "internal/sqlfe") ||
		pathHasSuffix(p.Pkg.Path(), "internal/wal") ||
		pathHasSuffix(p.Pkg.Path(), "internal/spill")
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = unparen(n.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			case *ast.AssignStmt:
				p.checkBlankAssign(n, inPersistLayer)
				return true
			}
			if call == nil {
				return true
			}
			if name, why := p.durabilityCall(call, inPersistLayer); name != "" {
				p.Reportf(call.Pos(), "%s error discarded: %s", name, why)
			}
			return true
		})
	}
}

// checkBlankAssign flags `_ = call()` and `x, _ := call()` shapes
// where the blank identifier swallows a durability call's error.
func (p *Pass) checkBlankAssign(n *ast.AssignStmt, inPersistLayer bool) {
	if len(n.Rhs) == 0 {
		return
	}
	// Single call on the RHS: the error is the call's last result; it
	// lands in the last LHS position.
	if len(n.Rhs) == 1 {
		call, ok := unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		if name, why := p.durabilityCall(call, inPersistLayer); name != "" {
			if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
				p.Reportf(n.Pos(), "%s error assigned to _: %s", name, why)
			}
		}
		return
	}
	// Parallel assignment: position i maps RHS to LHS directly.
	for i, rhs := range n.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(n.Lhs) {
			continue
		}
		if name, why := p.durabilityCall(call, inPersistLayer); name != "" {
			if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				p.Reportf(n.Pos(), "%s error assigned to _: %s", name, why)
			}
		}
	}
}

// durabilityCall classifies call; it returns the display name and the
// reason it matters, or "" when the call is not durability-bearing or
// returns no error.
func (p *Pass) durabilityCall(call *ast.CallExpr, inPersistLayer bool) (string, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if !p.returnsError(call) {
		return "", ""
	}
	// Package-qualified function call (sel.X names an imported package)?
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if pkg, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
			if pkg.Imported().Path() == "os" && inPersistLayer &&
				(name == "Remove" || name == "RemoveAll" || name == "Rename") {
				return "os." + name, "a failed file mutation in the persistence layer can lose the commit point"
			}
			if fsyncBearing[name] {
				return pkg.Name() + "." + name, "fsync-bearing call; route the error to the taint/poison path"
			}
			if pkg.Name() == "spill" && name == "Sweep" {
				return "spill.Sweep", "an unreported sweep failure leaks orphaned spill files onto the disk"
			}
			return "", ""
		}
	}
	if fsyncBearing[name] {
		return name, "fsync-bearing call; route the error to the taint/poison path"
	}
	if durabilityOwner[name] && p.recvIsDurabilityOwner(sel) {
		return name, "the receiver owns durability state (checkpoint/WAL); its error means a broken durability promise"
	}
	if spillBearing[name] && p.recvIsSpillType(sel) {
		return name, "a spill-path error decides the owning query's outcome (wrong results or leaked files if dropped)"
	}
	return "", ""
}

// recvIsSpillType reports whether the method receiver is a named type
// defined in a package named spill (matched by name so testdata stubs
// and the real internal/spill both qualify).
func (p *Pass) recvIsSpillType(sel *ast.SelectorExpr) bool {
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Name() == "spill"
}

// recvIsDurabilityOwner reports whether the method receiver is one of
// the durability-owning named types: wal.Log, or a type named DB in a
// package named engine or sqlfe (matched by name so testdata stubs and
// the real packages both qualify).
func (p *Pass) recvIsDurabilityOwner(sel *ast.SelectorExpr) bool {
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkgName := named.Obj().Pkg().Name()
	typeName := named.Obj().Name()
	switch {
	case pkgName == "wal" && typeName == "Log":
		return true
	case (pkgName == "engine" || pkgName == "sqlfe") && typeName == "DB":
		return true
	}
	return false
}

// returnsError reports whether call's last result is of type error.
func (p *Pass) returnsError(call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
