package vector

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/radix"
)

// serialGroupOracle is the map-based reference: group on keys, fold
// nil-aware sums/counts/min/max exactly as SQL defines them. Returns
// rows keyed by group key (sorted by key for comparison).
type oracleRow struct {
	key                  int64
	sumI, cntStar, cntNN int64
	minI, maxI           int64 // bat.NilInt = NULL
	sumF                 float64
	cntNNF               int64
	minF, maxF           float64 // NaN = NULL
}

func serialGroupOracle(keys, ivals []int64, fvals []float64) []oracleRow {
	idx := map[int64]int{}
	var rows []oracleRow
	for i, k := range keys {
		j, ok := idx[k]
		if !ok {
			j = len(rows)
			idx[k] = j
			rows = append(rows, oracleRow{key: k, minI: bat.NilInt, maxI: bat.NilInt,
				minF: math.NaN(), maxF: math.NaN()})
		}
		r := &rows[j]
		r.cntStar++
		if v := ivals[i]; v != bat.NilInt {
			r.sumI += v
			r.cntNN++
			if r.minI == bat.NilInt || v < r.minI {
				r.minI = v
			}
			if r.maxI == bat.NilInt || v > r.maxI {
				r.maxI = v
			}
		}
		if v := fvals[i]; v == v {
			r.sumF += v
			r.cntNNF++
			if r.minF != r.minF || v < r.minF {
				r.minF = v
			}
			if r.maxF != r.maxF || v > r.maxF {
				r.maxF = v
			}
		}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].key < rows[b].key })
	return rows
}

// fullSpecs covers every nil-aware aggregate over int column 1 and float
// column 2 of a (key, ival, fval) source.
var fullSpecs = []AggSpec{
	{Kind: AggSumIntNil, Col: 1},
	{Kind: AggCount},
	{Kind: AggCountNNInt, Col: 1},
	{Kind: AggMinInt, Col: 1},
	{Kind: AggMaxInt, Col: 1},
	{Kind: AggSumFloatNil, Col: 2},
	{Kind: AggCountNNFloat, Col: 2},
	{Kind: AggMinFloat, Col: 2},
	{Kind: AggMaxFloat, Col: 2},
}

// rowsFromBatch converts a merged [key, aggs...] batch into sorted
// oracle rows for comparison.
func rowsFromBatch(b *Batch) []oracleRow {
	rows := make([]oracleRow, b.N)
	for i := 0; i < b.N; i++ {
		rows[i] = oracleRow{
			key:     b.Cols[0].Ints[i],
			sumI:    b.Cols[1].Ints[i],
			cntStar: b.Cols[2].Ints[i],
			cntNN:   b.Cols[3].Ints[i],
			minI:    b.Cols[4].Ints[i],
			maxI:    b.Cols[5].Ints[i],
			sumF:    b.Cols[6].Floats[i],
			cntNNF:  b.Cols[7].Ints[i],
			minF:    b.Cols[8].Floats[i],
			maxF:    b.Cols[9].Floats[i],
		}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].key < rows[b].key })
	return rows
}

func sameRows(a, b []oracleRow) bool {
	if len(a) != len(b) {
		return false
	}
	feq := func(x, y float64) bool {
		if x != x || y != y {
			return x != x && y != y // both NULL
		}
		return math.Abs(x-y) <= 1e-9*(1+math.Abs(x))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.key != y.key || x.sumI != y.sumI || x.cntStar != y.cntStar ||
			x.cntNN != y.cntNN || x.minI != y.minI || x.maxI != y.maxI ||
			x.cntNNF != y.cntNNF || !feq(x.sumF, y.sumF) ||
			!feq(x.minF, y.minF) || !feq(x.maxF, y.maxF) {
			return false
		}
	}
	return true
}

func randGroupSource(rng *rand.Rand, n, card int) (*Source, []int64, []int64, []float64) {
	keys := make([]int64, n)
	ivals := make([]int64, n)
	fvals := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = rng.Int63n(int64(card))
		if rng.Intn(11) == 0 {
			keys[i] = bat.NilInt // NULL group key
		}
		ivals[i] = rng.Int63n(1000) - 500
		if rng.Intn(4) == 0 {
			ivals[i] = bat.NilInt
		}
		fvals[i] = float64(rng.Int63n(1000)) / 8
		if rng.Intn(4) == 0 {
			fvals[i] = math.NaN()
		}
	}
	src, err := NewSource([]string{"k", "v", "f"}, []Col{
		{Kind: KindInt, Ints: keys},
		{Kind: KindInt, Ints: ivals},
		{Kind: KindFloat, Floats: fvals},
	})
	if err != nil {
		panic(err)
	}
	return src, keys, ivals, fvals
}

// Property: merge-based parallel grouped aggregation equals the serial
// map oracle for every worker count, on nil-laden keys and values
// (all-NULL groups must come back as NULL). Runs under -race in CI.
func TestParallelGroupAggMatchesOracle(t *testing.T) {
	check := func(seed int64, cardRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		card := 1 + int(cardRaw)%96
		n := 500 + rng.Intn(3000)
		src, keys, ivals, fvals := randGroupSource(rng, n, card)
		want := serialGroupOracle(keys, ivals, fvals)
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := ParallelGroupAgg(context.Background(), src, []int{0}, fullSpecs, nil, workers, 256, 64)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !sameRows(rowsFromBatch(got), want) {
				t.Logf("workers=%d diverges from oracle (n=%d card=%d)", workers, n, card)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the shared-nothing radix-partitioned plan equals the oracle
// too, across worker counts and radix widths.
func TestPartitionedGroupAggMatchesOracle(t *testing.T) {
	check := func(seed int64, cardRaw uint8, bitsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		card := 1 + int(cardRaw)%96
		bits := int(bitsRaw) % 6
		n := 500 + rng.Intn(3000)
		src, keys, ivals, fvals := randGroupSource(rng, n, card)
		want := serialGroupOracle(keys, ivals, fvals)
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := PartitionedGroupAgg(context.Background(), src, 0, fullSpecs, workers, bits)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !sameRows(rowsFromBatch(got), want) {
				t.Logf("workers=%d bits=%d diverges (n=%d card=%d)", workers, bits, n, card)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Filtered grouped aggregation: predicates apply before grouping, so
// fully-filtered groups must not appear at all.
func TestParallelGroupAggWithPreds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src, keys, ivals, fvals := randGroupSource(rng, 4000, 16)
	preds := []Pred{{ColIdx: 1, Op: PredGt, IntVal: 0}} // v > 0 (also drops NilInt? NilInt < 0, dropped)
	var fk []int64
	var fi []int64
	var ff []float64
	for i := range keys {
		if ivals[i] > 0 {
			fk = append(fk, keys[i])
			fi = append(fi, ivals[i])
			ff = append(ff, fvals[i])
		}
	}
	want := serialGroupOracle(fk, fi, ff)
	for _, workers := range []int{1, 3} {
		got, err := ParallelGroupAgg(context.Background(), src, []int{0}, fullSpecs, preds, workers, 512, 128)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(rowsFromBatch(got), want) {
			t.Fatalf("workers=%d: filtered grouping diverges", workers)
		}
	}
}

// A canceled context stops both plans with context.Canceled.
func TestGroupAggCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src, _, _, _ := randGroupSource(rng, 100000, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParallelGroupAgg(ctx, src, []int{0}, fullSpecs, nil, 4, 1024, 128); !errors.Is(err, context.Canceled) {
		t.Fatalf("merge plan: err = %v, want Canceled", err)
	}
	if _, err := PartitionedGroupAgg(ctx, src, 0, fullSpecs, 4, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("partitioned plan: err = %v, want Canceled", err)
	}
}

func TestEstimateGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	low := make([]int64, 1<<20)
	high := make([]int64, 1<<20)
	for i := range low {
		low[i] = rng.Int63n(100)
		high[i] = rng.Int63()
	}
	// The mid-cardinality band is where a naive linear extrapolation
	// overestimates by orders of magnitude once the sample is half
	// distinct: these true cardinalities must all stay on the merge
	// side of the plan chooser (their tables fit the LLC).
	for _, card := range []int{4096, 10000, 50000} {
		mid := make([]int64, 1<<20)
		for i := range mid {
			mid[i] = rng.Int63n(int64(card))
		}
		est := EstimateGroups(mid)
		if radix.ShouldPartitionGroup(len(mid), est, 4) {
			t.Fatalf("card %d (est %d) must pick the merge plan", card, est)
		}
	}
	if est := EstimateGroups(low); est < 50 || est > 400 {
		t.Fatalf("low-cardinality estimate %d, want ~100", est)
	}
	if est := EstimateGroups(high); est < len(high)/2 {
		t.Fatalf("high-cardinality estimate %d, want ~%d", est, len(high))
	}
	// The estimates must land on the right side of the plan chooser.
	if radix.ShouldPartitionGroup(1<<20, EstimateGroups(low), 4) {
		t.Fatal("low cardinality must pick the merge plan")
	}
	if !radix.ShouldPartitionGroup(1<<20, EstimateGroups(high), 4) {
		t.Fatal("high cardinality must pick the partitioned plan")
	}
}

// Composite-key grouping: ParallelGroupAgg over TWO int key columns
// (the PairGroupTable path) agrees with a map oracle keyed on the pair,
// across worker counts, on nil-laden keys and values.
func TestParallelGroupAggPairKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 3000
	k1 := make([]int64, n)
	k2 := make([]int64, n)
	vals := make([]int64, n)
	for i := range k1 {
		k1[i] = rng.Int63n(7)
		k2[i] = rng.Int63n(5)
		if rng.Intn(9) == 0 {
			k1[i] = bat.NilInt
		}
		if rng.Intn(9) == 0 {
			k2[i] = bat.NilInt
		}
		vals[i] = rng.Int63n(100)
		if rng.Intn(4) == 0 {
			vals[i] = bat.NilInt
		}
	}
	type pair struct{ a, b int64 }
	type acc struct {
		sum, cntStar, cntNN int64
	}
	oracle := map[pair]*acc{}
	for i := range k1 {
		p := pair{k1[i], k2[i]}
		a := oracle[p]
		if a == nil {
			a = &acc{}
			oracle[p] = a
		}
		a.cntStar++
		if vals[i] != bat.NilInt {
			a.sum += vals[i]
			a.cntNN++
		}
	}

	src, err := NewSource([]string{"k1", "k2", "v"}, []Col{
		{Kind: KindInt, Ints: k1},
		{Kind: KindInt, Ints: k2},
		{Kind: KindInt, Ints: vals},
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := []AggSpec{
		{Kind: AggSumIntNil, Col: 2},
		{Kind: AggCount},
		{Kind: AggCountNNInt, Col: 2},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := ParallelGroupAgg(context.Background(), src, []int{0, 1}, specs, nil, workers, 256, 64)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != len(oracle) {
			t.Fatalf("workers=%d: %d groups, oracle %d", workers, got.N, len(oracle))
		}
		for g := 0; g < got.N; g++ {
			p := pair{got.Cols[0].Ints[g], got.Cols[1].Ints[g]}
			a := oracle[p]
			if a == nil {
				t.Fatalf("workers=%d: unexpected group %v", workers, p)
			}
			if got.Cols[2].Ints[g] != a.sum || got.Cols[3].Ints[g] != a.cntStar || got.Cols[4].Ints[g] != a.cntNN {
				t.Fatalf("workers=%d group %v: got (%d,%d,%d) want (%d,%d,%d)", workers, p,
					got.Cols[2].Ints[g], got.Cols[3].Ints[g], got.Cols[4].Ints[g], a.sum, a.cntStar, a.cntNN)
			}
		}
	}
}
