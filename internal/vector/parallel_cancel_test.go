package vector

import (
	"context"
	"errors"
	"testing"
)

func cancelSource(n int) *Source {
	ints := make([]int64, n)
	for i := range ints {
		ints[i] = int64(i)
	}
	src, err := NewSource([]string{"x"}, []Col{{Kind: KindInt, Ints: ints}})
	if err != nil {
		panic(err)
	}
	return src
}

// A canceled context aborts the exchange at a morsel boundary: Next
// eventually returns the context error, and the workers never claim
// the remaining morsels.
func TestExchangeContextCancel(t *testing.T) {
	src := cancelSource(1 << 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ex := &Exchange{Source: src, Workers: 2, MorselSize: 1024, VectorSize: 256,
		Plan: func(scan Operator) Operator { return scan }, Ctx: ctx}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	rows := 0
	canceled := false
	for {
		b, err := ex.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Next error = %v, want context.Canceled", err)
			}
			canceled = true
			break
		}
		if b == nil {
			break
		}
		rows += b.Rows()
		if !cancelWasCalled(cancel, rows) {
			continue
		}
	}
	if !canceled {
		t.Fatalf("exchange drained %d rows without reporting cancellation", rows)
	}
	if rows >= src.Len() {
		t.Fatalf("cancellation did not abort early: saw all %d rows", rows)
	}
}

// cancelWasCalled cancels after the first batch and reports it did.
func cancelWasCalled(cancel context.CancelFunc, rows int) bool {
	if rows > 0 {
		cancel()
		return true
	}
	return false
}

// A context canceled before Open yields no batches, only the error.
func TestExchangeContextCancelBeforeOpen(t *testing.T) {
	src := cancelSource(4096)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &Exchange{Source: src, Workers: 2, MorselSize: 256,
		Plan: func(scan Operator) Operator { return scan }, Ctx: ctx}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	for {
		b, err := ex.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Next error = %v", err)
			}
			return
		}
		if b == nil {
			t.Fatal("pre-canceled exchange ended without an error")
		}
		t.Fatalf("pre-canceled exchange produced a batch of %d rows", b.Rows())
	}
}
