package vector

import (
	"errors"
	"fmt"
	"math"
)

// HashJoinOp is a vectorized equi-join on int64 keys: the build child is
// drained into a hash table, then probe batches stream through, emitting
// joined batches of probe payload columns ++ build payload columns.
//
// The build-side payload can be kept in two in-execution layouts (paper §5,
// [46]): columnar (DSM — one array per column, so fetching a match touches
// one cache line *per column*) or row-wise re-grouped (NSM — matched
// payloads contiguous, one line per match). The layout choice is exactly
// the "tuple-layout planning" the paper proposes as a new query-optimizer
// task; benchmark BenchmarkJoinLayout measures the tradeoff.
type HashJoinOp struct {
	Build, Probe Operator
	BuildKey     int // key column index in build batches
	ProbeKey     int // key column index in probe batches
	// BuildPayload lists build columns to carry into the output.
	BuildPayload []int
	// RowLayout re-groups build payloads row-wise (NSM) instead of
	// keeping them columnar (DSM).
	RowLayout bool

	table map[int64][]int32 // key -> build row ids
	// DSM payload storage: one slice per payload column.
	cols  []Col
	kinds []Kind
	// NSM payload storage: rows[i*ncols .. i*ncols+ncols) holds row i
	// (int64 cells; float bits stored via the column kind).
	rows []int64

	out Batch
}

// Open implements Operator: drains the build side into the hash table.
func (j *HashJoinOp) Open() error {
	if err := j.Build.Open(); err != nil {
		return err
	}
	if err := j.Probe.Open(); err != nil {
		return err
	}
	j.table = make(map[int64][]int32)
	j.cols = make([]Col, len(j.BuildPayload))
	j.kinds = make([]Kind, len(j.BuildPayload))
	j.rows = j.rows[:0]
	nrows := int32(0)
	for {
		b, err := j.Build.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if j.BuildKey >= len(b.Cols) {
			return fmt.Errorf("vector: build key column %d out of range", j.BuildKey)
		}
		keys := b.Cols[j.BuildKey].Ints
		var innerErr error
		b.ForEach(func(i int32) {
			if innerErr != nil {
				return
			}
			j.table[keys[i]] = append(j.table[keys[i]], nrows)
			for pi, pc := range j.BuildPayload {
				if pc >= len(b.Cols) {
					innerErr = fmt.Errorf("vector: build payload column %d out of range", pc)
					return
				}
				c := &b.Cols[pc]
				j.kinds[pi] = c.Kind
				var cell int64
				switch c.Kind {
				case KindInt:
					cell = c.Ints[i]
				case KindFloat:
					cell = int64(floatBits(c.Floats[i]))
				default:
					innerErr = errors.New("vector: join payload must be int or float")
					return
				}
				if j.RowLayout {
					j.rows = append(j.rows, cell)
				} else {
					col := &j.cols[pi]
					col.Kind = c.Kind
					switch c.Kind {
					case KindInt:
						col.Ints = append(col.Ints, cell)
					case KindFloat:
						col.Floats = append(col.Floats, c.Floats[i])
					}
				}
			}
			nrows++
		})
		if innerErr != nil {
			return innerErr
		}
	}
	return nil
}

// Next implements Operator: pulls probe batches until one produces output.
func (j *HashJoinOp) Next() (*Batch, error) {
	np := len(j.BuildPayload)
	for {
		b, err := j.Probe.Next()
		if err != nil || b == nil {
			return nil, err
		}
		keys := b.Cols[j.ProbeKey].Ints
		// Output: probe columns gathered per match + build payloads.
		outCols := make([]Col, len(b.Cols)+np)
		for c := range b.Cols {
			outCols[c].Kind = b.Cols[c].Kind
		}
		for pi := range j.BuildPayload {
			outCols[len(b.Cols)+pi].Kind = j.kinds[pi]
		}
		n := 0
		b.ForEach(func(i int32) {
			for _, bid := range j.table[keys[i]] {
				for c := range b.Cols {
					appendCell(&outCols[c], &b.Cols[c], i)
				}
				for pi := range j.BuildPayload {
					oc := &outCols[len(b.Cols)+pi]
					if j.RowLayout {
						cell := j.rows[int(bid)*np+pi]
						switch j.kinds[pi] {
						case KindInt:
							oc.Ints = append(oc.Ints, cell)
						case KindFloat:
							oc.Floats = append(oc.Floats, floatFromBits(uint64(cell)))
						}
					} else {
						switch j.kinds[pi] {
						case KindInt:
							oc.Ints = append(oc.Ints, j.cols[pi].Ints[bid])
						case KindFloat:
							oc.Floats = append(oc.Floats, j.cols[pi].Floats[bid])
						}
					}
				}
				n++
			}
		})
		if n == 0 {
			continue
		}
		j.out = Batch{N: n, Cols: outCols}
		return &j.out, nil
	}
}

// Close implements Operator.
func (j *HashJoinOp) Close() error {
	if err := j.Build.Close(); err != nil {
		return err
	}
	return j.Probe.Close()
}

func appendCell(dst *Col, src *Col, i int32) {
	switch src.Kind {
	case KindInt:
		dst.Ints = append(dst.Ints, src.Ints[i])
	case KindFloat:
		dst.Floats = append(dst.Floats, src.Floats[i])
	case KindBool:
		dst.Bools = append(dst.Bools, src.Bools[i])
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
