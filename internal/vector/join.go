package vector

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/memgov"
	"repro/internal/radix"
)

// JoinBuild is a fully-built, read-only build side of a hash join: the
// key table plus the payload columns, safe to share across concurrent
// probe pipelines (it is never mutated after BuildJoinTable returns).
// The key table is the shared open-addressing core (radix.JoinTable):
// flat for small builds, radix-partitioned past partitionRows rows so
// each probe stays inside one cache-sized cluster (§4.2), and nil keys
// (bat.NilInt) never matching.
type JoinBuild struct {
	table *radix.JoinTable

	// DSM payload storage: one slice per payload column.
	cols  []Col
	kinds []Kind
	// NSM payload storage: rows[i*np .. i*np+np) holds row i (int64
	// cells; float bits stored via the column kind).
	rows      []int64
	np        int
	rowLayout bool
	nrows     int

	res     *memgov.Reservation
	charged int64
}

// Rows returns the number of build rows.
func (jb *JoinBuild) Rows() int { return jb.nrows }

// ReleaseMem hands the build's reservation charge back. Grace-hash
// joins call it after each per-partition build is probed out; for the
// usual one-build-per-query case the charge simply dies with the
// query's reservation.
func (jb *JoinBuild) ReleaseMem() {
	if jb.charged != 0 {
		jb.res.Release(jb.charged)
		jb.charged = 0
	}
}

// joinTableBytesPerRow approximates radix.NewJoinTable's per-row
// footprint (slot array at load <= ½ plus the next-chain), charged
// BEFORE the table is built.
const joinTableBytesPerRow = 48

// BuildJoinTable drains op (opening and closing it) into a JoinBuild:
// key column key, payload columns carried into join output, laid out
// row-wise when rowLayout is set.
func BuildJoinTable(op Operator, key int, payload []int, rowLayout bool) (*JoinBuild, error) {
	return BuildJoinTableGov(op, key, payload, rowLayout, nil)
}

// BuildJoinTableGov is BuildJoinTable charging the materialized build
// side (keys, payload cells, then the hash table itself) against res.
// A denied charge returns the query's memgov.ErrExceeded with the
// partial build's memory already handed back; the physical layer may
// answer by re-planning to a grace-hash join.
func BuildJoinTableGov(op Operator, key int, payload []int, rowLayout bool, res *memgov.Reservation) (*JoinBuild, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()

	jb := &JoinBuild{
		cols:      make([]Col, len(payload)),
		kinds:     make([]Kind, len(payload)),
		np:        len(payload),
		rowLayout: rowLayout,
		res:       res,
	}
	var keys []int64
	for {
		b, err := op.Next()
		if err != nil {
			jb.ReleaseMem()
			return nil, err
		}
		if b == nil {
			break
		}
		if res != nil {
			// 8 bytes of key plus 8 per payload cell for every row.
			add := int64(b.Rows()) * int64(8+8*len(payload))
			if err := res.Acquire(add); err != nil {
				jb.ReleaseMem()
				return nil, err
			}
			jb.charged += add
		}
		if key >= len(b.Cols) {
			return nil, fmt.Errorf("vector: build key column %d out of range", key)
		}
		kcol := b.Cols[key].Ints
		var innerErr error
		b.ForEach(func(i int32) {
			if innerErr != nil {
				return
			}
			keys = append(keys, kcol[i])
			for pi, pc := range payload {
				if pc >= len(b.Cols) {
					innerErr = fmt.Errorf("vector: build payload column %d out of range", pc)
					return
				}
				c := &b.Cols[pc]
				jb.kinds[pi] = c.Kind
				var cell int64
				switch c.Kind {
				case KindInt:
					cell = c.Ints[i]
				case KindFloat:
					cell = int64(floatBits(c.Floats[i]))
				default:
					innerErr = errors.New("vector: join payload must be int or float")
					return
				}
				if rowLayout {
					jb.rows = append(jb.rows, cell)
				} else {
					col := &jb.cols[pi]
					col.Kind = c.Kind
					switch c.Kind {
					case KindInt:
						col.Ints = append(col.Ints, cell)
					case KindFloat:
						col.Floats = append(col.Floats, c.Floats[i])
					}
				}
			}
		})
		if innerErr != nil {
			jb.ReleaseMem()
			return nil, innerErr
		}
	}
	if res != nil {
		add := int64(len(keys)) * joinTableBytesPerRow
		if err := res.Acquire(add); err != nil {
			jb.ReleaseMem()
			return nil, err
		}
		jb.charged += add
	}
	jb.nrows = len(keys)
	jb.table = radix.NewJoinTable(keys)
	return jb, nil
}

// ForEach calls f with each build row id matching key.
func (jb *JoinBuild) ForEach(key int64, f func(row int32)) {
	jb.table.ForEach(key, f)
}

// HashJoinOp is a vectorized equi-join on int64 keys: the build child is
// drained into a JoinBuild, then probe batches stream through, emitting
// joined batches of probe payload columns ++ build payload columns.
//
// The build-side payload can be kept in two in-execution layouts (paper §5,
// [46]): columnar (DSM — one array per column, so fetching a match touches
// one cache line *per column*) or row-wise re-grouped (NSM — matched
// payloads contiguous, one line per match). The layout choice is exactly
// the "tuple-layout planning" the paper proposes as a new query-optimizer
// task; benchmark BenchmarkJoinLayout measures the tradeoff.
type HashJoinOp struct {
	Build, Probe Operator
	BuildKey     int // key column index in build batches
	ProbeKey     int // key column index in probe batches
	// BuildPayload lists build columns to carry into the output.
	BuildPayload []int
	// RowLayout re-groups build payloads row-wise (NSM) instead of
	// keeping them columnar (DSM).
	RowLayout bool
	// Shared, when set, is a pre-built build side (from BuildJoinTable);
	// Build is then ignored. This is how morsel-parallel probe pipelines
	// share one read-only table (see parallel.go).
	Shared *JoinBuild

	jb  *JoinBuild
	out Batch
}

// Open implements Operator: drains the build side into the hash table
// (unless a Shared build was injected).
func (j *HashJoinOp) Open() error {
	if err := j.Probe.Open(); err != nil {
		return err
	}
	if j.Shared != nil {
		j.jb = j.Shared
		return nil
	}
	jb, err := BuildJoinTable(j.Build, j.BuildKey, j.BuildPayload, j.RowLayout)
	if err != nil {
		return err
	}
	j.jb = jb
	return nil
}

// Next implements Operator: pulls probe batches until one produces output.
func (j *HashJoinOp) Next() (*Batch, error) {
	jb := j.jb
	np := jb.np
	for {
		b, err := j.Probe.Next()
		if err != nil || b == nil {
			return nil, err
		}
		keys := b.Cols[j.ProbeKey].Ints
		// Output: probe columns gathered per match + build payloads.
		outCols := make([]Col, len(b.Cols)+np)
		for c := range b.Cols {
			outCols[c].Kind = b.Cols[c].Kind
		}
		for pi := range outCols[len(b.Cols):] {
			outCols[len(b.Cols)+pi].Kind = jb.kinds[pi]
		}
		n := 0
		emit := func(i, bid int32) {
			for c := range b.Cols {
				appendCell(&outCols[c], &b.Cols[c], i)
			}
			for pi := 0; pi < np; pi++ {
				oc := &outCols[len(b.Cols)+pi]
				if jb.rowLayout {
					cell := jb.rows[int(bid)*np+pi]
					switch jb.kinds[pi] {
					case KindInt:
						oc.Ints = append(oc.Ints, cell)
					case KindFloat:
						oc.Floats = append(oc.Floats, floatFromBits(uint64(cell)))
					}
				} else {
					switch jb.kinds[pi] {
					case KindInt:
						oc.Ints = append(oc.Ints, jb.cols[pi].Ints[bid])
					case KindFloat:
						oc.Floats = append(oc.Floats, jb.cols[pi].Floats[bid])
					}
				}
			}
			n++
		}
		if ht := jb.table.Flat(); ht != nil {
			// Flat build: iterate First/Next inline instead of paying a
			// nested closure call per match in the hottest probe loop.
			b.ForEach(func(i int32) {
				for bid := ht.First(keys[i]); bid >= 0; bid = ht.Next(bid) {
					emit(i, bid)
				}
			})
		} else {
			b.ForEach(func(i int32) {
				jb.table.ForEach(keys[i], func(bid int32) { emit(i, bid) })
			})
		}
		if n == 0 {
			continue
		}
		j.out = Batch{N: n, Cols: outCols}
		return &j.out, nil
	}
}

// Close implements Operator. The build child is not closed here:
// BuildJoinTable already closed it when Open drained it.
func (j *HashJoinOp) Close() error {
	return j.Probe.Close()
}

func appendCell(dst *Col, src *Col, i int32) {
	switch src.Kind {
	case KindInt:
		dst.Ints = append(dst.Ints, src.Ints[i])
	case KindFloat:
		dst.Floats = append(dst.Floats, src.Floats[i])
	case KindBool:
		dst.Bools = append(dst.Bools, src.Bools[i])
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
