package vector

import "testing"

// Close before Open used to close a nil channel (panic) and range over a
// nil channel (deadlock); it must be a safe no-op, and Close must be
// idempotent after a normal run.
func TestExchangeCloseBeforeOpenAndIdempotent(t *testing.T) {
	src, err := NewSource([]string{"x"}, []Col{{Kind: KindInt, Ints: []int64{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	e := NewParallelScan(src, 2)
	if err := e.Close(); err != nil {
		t.Fatalf("Close before Open: %v", err)
	}
	// The operator must still be usable after the premature Close.
	if err := e.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		b, err := e.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		n += b.N
	}
	if n != 3 {
		t.Fatalf("scanned %d rows, want 3", n)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// Close must also stop workers that still have batches in flight.
func TestExchangeCloseMidStream(t *testing.T) {
	vals := make([]int64, 1<<16)
	src, err := NewSource([]string{"x"}, []Col{{Kind: KindInt, Ints: vals}})
	if err != nil {
		t.Fatal(err)
	}
	e := NewParallelScan(src, 4)
	e.MorselSize = 128
	if err := e.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Next(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
