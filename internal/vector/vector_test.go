package vector

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func intSource(t *testing.T, name string, vals []int64) *Source {
	t.Helper()
	s, err := NewSource([]string{name}, []Col{{Kind: KindInt, Ints: vals}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSourceValidates(t *testing.T) {
	_, err := NewSource([]string{"a", "b"}, []Col{
		{Kind: KindInt, Ints: []int64{1}},
		{Kind: KindInt, Ints: []int64{1, 2}},
	})
	if err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := NewSource([]string{"a"}, nil); err == nil {
		t.Fatal("expected name/col count error")
	}
}

func TestScanBatchSizes(t *testing.T) {
	src := intSource(t, "v", []int64{1, 2, 3, 4, 5})
	sc := NewScan(src, 2)
	if err := sc.Open(); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for {
		b, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		sizes = append(sizes, b.N)
	}
	if !reflect.DeepEqual(sizes, []int{2, 2, 1}) {
		t.Fatalf("batch sizes = %v", sizes)
	}
}

func TestScanVectorSizeOne(t *testing.T) {
	// Vector size 1 = tuple-at-a-time (the paper's slow end of the sweep).
	src := intSource(t, "v", []int64{7, 8})
	rows, err := Drain(NewScan(src, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != int64(7) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestFilterSelectionVector(t *testing.T) {
	src := intSource(t, "v", []int64{5, 15, 25, 35})
	f := &Filter{
		Child: NewScan(src, 1024),
		Preds: []Pred{{ColIdx: 0, Op: PredGe, IntVal: 10}, {ColIdx: 0, Op: PredLt, IntVal: 30}},
	}
	rows, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]any{{int64(15)}, {int64(25)}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestFilterSkipsEmptyBatches(t *testing.T) {
	src := intSource(t, "v", []int64{1, 1, 1, 9})
	f := &Filter{Child: NewScan(src, 2), Preds: []Pred{{ColIdx: 0, Op: PredGe, IntVal: 5}}}
	rows, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != int64(9) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestFilterFloatPreds(t *testing.T) {
	src, err := NewSource([]string{"d"}, []Col{{Kind: KindFloat, Floats: []float64{0.01, 0.05, 0.09}}})
	if err != nil {
		t.Fatal(err)
	}
	f := &Filter{Child: NewScan(src, 8), Preds: []Pred{
		{ColIdx: 0, Op: PredGeF, FltVal: 0.04},
		{ColIdx: 0, Op: PredLeF, FltVal: 0.06},
	}}
	rows, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != 0.05 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestProjectExpressions(t *testing.T) {
	src, err := NewSource([]string{"a", "b"}, []Col{
		{Kind: KindInt, Ints: []int64{1, 2}},
		{Kind: KindInt, Ints: []int64{10, 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &Project{
		Child: NewScan(src, 8),
		Exprs: []Expr{
			Bin{Op: EAddInt, L: ColRef{0}, R: ColRef{1}},
			Bin{Op: EMulInt, L: ColRef{0}, R: ColRef{1}},
			Bin{Op: EAddIntConst, L: ColRef{0}, IntConst: 100},
		},
	}
	rows, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]any{{int64(11), int64(10), int64(101)}, {int64(22), int64(40), int64(102)}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestProjectFloatExpr(t *testing.T) {
	src, err := NewSource([]string{"p", "d"}, []Col{
		{Kind: KindFloat, Floats: []float64{10, 20}},
		{Kind: KindFloat, Floats: []float64{0.1, 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// p * (1 - d): the TPC-H Q1/Q6 revenue expression.
	p := &Project{
		Child: NewScan(src, 8),
		Exprs: []Expr{Bin{Op: EMulFloat, L: ColRef{0},
			R: Bin{Op: ESubConstFloat, FltConst: 1, L: ColRef{1}}}},
	}
	rows, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 9.0 || rows[1][0] != 10.0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggGlobalSum(t *testing.T) {
	src := intSource(t, "v", []int64{1, 2, 3, 4})
	a := &Agg{Child: NewScan(src, 2), KeyCol: -1, Aggs: []AggSpec{
		{Kind: AggSumInt, Col: 0}, {Kind: AggCount},
	}}
	rows, err := Drain(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != int64(10) || rows[0][1] != int64(4) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggGrouped(t *testing.T) {
	src, err := NewSource([]string{"k", "v"}, []Col{
		{Kind: KindInt, Ints: []int64{1, 2, 1, 2, 1}},
		{Kind: KindInt, Ints: []int64{10, 20, 30, 40, 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := &Agg{Child: NewScan(src, 2), KeyCol: 0, Aggs: []AggSpec{
		{Kind: AggSumInt, Col: 1}, {Kind: AggCount},
	}}
	rows, err := Drain(a)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].(int64) < rows[j][0].(int64) })
	want := [][]any{{int64(1), int64(90), int64(3)}, {int64(2), int64(60), int64(2)}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestFullPipelineFilterProjectAgg(t *testing.T) {
	// SELECT sum(a*b) WHERE a >= 2 — across several batch sizes the result
	// must be identical (vector size only changes performance).
	av := []int64{1, 2, 3, 4, 5}
	bv := []int64{10, 10, 10, 10, 10}
	var want int64
	for i := range av {
		if av[i] >= 2 {
			want += av[i] * bv[i]
		}
	}
	for _, size := range []int{1, 2, 3, 1024} {
		src, err := NewSource([]string{"a", "b"}, []Col{
			{Kind: KindInt, Ints: av}, {Kind: KindInt, Ints: bv},
		})
		if err != nil {
			t.Fatal(err)
		}
		plan := &Agg{
			Child: &Project{
				Child: &Filter{
					Child: NewScan(src, size),
					Preds: []Pred{{ColIdx: 0, Op: PredGe, IntVal: 2}},
				},
				Exprs: []Expr{Bin{Op: EMulInt, L: ColRef{0}, R: ColRef{1}}},
			},
			KeyCol: -1,
			Aggs:   []AggSpec{{Kind: AggSumInt, Col: 0}},
		}
		rows, err := Drain(plan)
		if err != nil {
			t.Fatal(err)
		}
		if rows[0][0] != want {
			t.Fatalf("size %d: got %v, want %d", size, rows[0][0], want)
		}
	}
}

// Property: result of filter+sum is invariant under vector size.
func TestQuickVectorSizeInvariance(t *testing.T) {
	f := func(raw []uint16, size8 uint8) bool {
		size := int(size8)%100 + 1
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v % 100)
		}
		src, err := NewSource([]string{"v"}, []Col{{Kind: KindInt, Ints: vals}})
		if err != nil {
			return false
		}
		plan := &Agg{
			Child: &Filter{
				Child: NewScan(src, size),
				Preds: []Pred{{ColIdx: 0, Op: PredLt, IntVal: 50}},
			},
			KeyCol: -1,
			Aggs:   []AggSpec{{Kind: AggSumInt, Col: 0}},
		}
		rows, err := Drain(plan)
		if err != nil {
			return false
		}
		var want int64
		for _, v := range vals {
			if v < 50 {
				want += v
			}
		}
		return rows[0][0] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchForEachAndRows(t *testing.T) {
	b := &Batch{N: 3, Sel: []int32{0, 2}}
	if b.Rows() != 2 {
		t.Fatalf("rows = %d", b.Rows())
	}
	var got []int32
	b.ForEach(func(i int32) { got = append(got, i) })
	if !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Fatalf("foreach = %v", got)
	}
	b.Sel = nil
	if b.Rows() != 3 {
		t.Fatalf("rows = %d", b.Rows())
	}
}

// BenchmarkVectorSize is the E6 kernel at a few sizes (the full sweep lives
// in the root bench harness).
func BenchmarkVectorSize(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	n := 1 << 20
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = r.Int63n(1000)
	}
	for _, size := range []int{1, 16, 1024, n} {
		src, err := NewSource([]string{"v"}, []Col{{Kind: KindInt, Ints: vals}})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan := &Agg{
					Child: &Filter{
						Child: NewScan(src, size),
						Preds: []Pred{{ColIdx: 0, Op: PredLt, IntVal: 500}},
					},
					KeyCol: -1,
					Aggs:   []AggSpec{{Kind: AggSumInt, Col: 0}},
				}
				if _, err := Drain(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "size=full"
	case n == 1:
		return "size=1"
	case n == 16:
		return "size=16"
	default:
		return "size=1024"
	}
}
