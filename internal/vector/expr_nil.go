package vector

import (
	"math"

	"repro/internal/bat"
)

// Nil-aware arithmetic map primitives. These mirror the MAL calc
// kernels (batalg.Add/Sub/Mul and the *Scalar forms) bit for bit so an
// expression evaluated on the vector path is indistinguishable from
// the interpreted program: INT arithmetic propagates the nil sentinel
// (any nil input -> nil output, everything else plain two's-complement
// wraparound), INT->FLOAT conversion turns nil into NaN, and FLOAT
// arithmetic is plain IEEE math — NaN (the float nil) propagates by
// itself, exactly as in batalg's unguarded float loops.

// MapAddIntNil writes a[i]+b[i] with nil propagation into out.
func MapAddIntNil(a, b []int64, sel []int32, out []int64) {
	if sel == nil {
		for i := range a {
			if a[i] == bat.NilInt || b[i] == bat.NilInt {
				out[i] = bat.NilInt
			} else {
				out[i] = a[i] + b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if a[i] == bat.NilInt || b[i] == bat.NilInt {
			out[i] = bat.NilInt
		} else {
			out[i] = a[i] + b[i]
		}
	}
}

// MapSubIntNil writes a[i]-b[i] with nil propagation into out.
func MapSubIntNil(a, b []int64, sel []int32, out []int64) {
	if sel == nil {
		for i := range a {
			if a[i] == bat.NilInt || b[i] == bat.NilInt {
				out[i] = bat.NilInt
			} else {
				out[i] = a[i] - b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if a[i] == bat.NilInt || b[i] == bat.NilInt {
			out[i] = bat.NilInt
		} else {
			out[i] = a[i] - b[i]
		}
	}
}

// MapMulIntNil writes a[i]*b[i] with nil propagation into out.
func MapMulIntNil(a, b []int64, sel []int32, out []int64) {
	if sel == nil {
		for i := range a {
			if a[i] == bat.NilInt || b[i] == bat.NilInt {
				out[i] = bat.NilInt
			} else {
				out[i] = a[i] * b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if a[i] == bat.NilInt || b[i] == bat.NilInt {
			out[i] = bat.NilInt
		} else {
			out[i] = a[i] * b[i]
		}
	}
}

// MapAddIntConstNil writes a[i]+v with nil propagation into out
// (batalg.AddScalar).
func MapAddIntConstNil(a []int64, v int64, sel []int32, out []int64) {
	if sel == nil {
		for i, x := range a {
			if x == bat.NilInt {
				out[i] = bat.NilInt
			} else {
				out[i] = x + v
			}
		}
		return
	}
	for _, i := range sel {
		if a[i] == bat.NilInt {
			out[i] = bat.NilInt
		} else {
			out[i] = a[i] + v
		}
	}
}

// MapMulIntConstNil writes a[i]*v with nil propagation into out
// (batalg.MulScalar).
func MapMulIntConstNil(a []int64, v int64, sel []int32, out []int64) {
	if sel == nil {
		for i, x := range a {
			if x == bat.NilInt {
				out[i] = bat.NilInt
			} else {
				out[i] = x * v
			}
		}
		return
	}
	for _, i := range sel {
		if a[i] == bat.NilInt {
			out[i] = bat.NilInt
		} else {
			out[i] = a[i] * v
		}
	}
}

// MapIntToFloat widens ints to floats, nil -> NaN (batalg.IntToFloat).
func MapIntToFloat(a []int64, sel []int32, out []float64) {
	if sel == nil {
		for i, x := range a {
			if x == bat.NilInt {
				out[i] = math.NaN()
			} else {
				out[i] = float64(x)
			}
		}
		return
	}
	for _, i := range sel {
		if a[i] == bat.NilInt {
			out[i] = math.NaN()
		} else {
			out[i] = float64(a[i])
		}
	}
}

// MapSubFloat writes a[i]-b[i] into out (plain IEEE; NaN propagates).
func MapSubFloat(a, b []float64, sel []int32, out []float64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] - b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] - b[i]
	}
}

// MapAddFloatConst writes a[i]+v into out (batalg.AddFloatScalar).
func MapAddFloatConst(a []float64, v float64, sel []int32, out []float64) {
	if sel == nil {
		for i, x := range a {
			out[i] = x + v
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] + v
	}
}

// MapMulFloatConst writes a[i]*v into out (batalg.MulFloatScalar).
func MapMulFloatConst(a []float64, v float64, sel []int32, out []float64) {
	if sel == nil {
		for i, x := range a {
			out[i] = x * v
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] * v
	}
}
