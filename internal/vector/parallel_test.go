package vector

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func TestMorselCursorDisjointCover(t *testing.T) {
	src, _ := NewSource([]string{"v"}, []Col{{Kind: KindInt, Ints: make([]int64, 10000)}})
	cur := NewMorselCursor(src, 333)
	covered := 0
	prev := -1
	for {
		lo, hi, ok := cur.claim()
		if !ok {
			break
		}
		if lo <= prev {
			t.Fatalf("overlapping morsel [%d,%d)", lo, hi)
		}
		prev = lo
		covered += hi - lo
	}
	if covered != 10000 {
		t.Fatalf("covered %d rows", covered)
	}
}

func TestParallelScanSumMatchesSerial(t *testing.T) {
	n := 50000
	r := rand.New(rand.NewSource(5))
	vals := make([]int64, n)
	var want int64
	for i := range vals {
		vals[i] = r.Int63n(1000)
		want += vals[i]
	}
	src, err := NewSource([]string{"v"}, []Col{{Kind: KindInt, Ints: vals}})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		ex := NewParallelScan(src, workers)
		ex.MorselSize = 4096
		agg := &Agg{Child: ex, KeyCol: -1, Aggs: []AggSpec{{Kind: AggSumInt, Col: 0}, {Kind: AggCount}}}
		rows, err := Drain(agg)
		if err != nil {
			t.Fatal(err)
		}
		if got := rows[0][0].(int64); got != want {
			t.Errorf("workers=%d: sum = %d, want %d", workers, got, want)
		}
		if got := rows[0][1].(int64); got != int64(n) {
			t.Errorf("workers=%d: count = %d, want %d", workers, got, n)
		}
	}
}

// q6Source builds the synthetic lineitem columns shared by the Q6 tests,
// along with the serially-computed oracle sum.
func q6Source(t testing.TB, n int, seed int64) (*Source, float64) {
	li := workload.GenLineItem(n, seed)
	var want float64
	for i := 0; i < n; i++ {
		if li.Quantity[i] < 24 && li.Discount[i] >= 0.05 && li.Discount[i] <= 0.07 {
			want += li.Price[i] * (1 - li.Discount[i])
		}
	}
	src, err := NewSource([]string{"q", "p", "d"}, []Col{
		{Kind: KindInt, Ints: li.Quantity},
		{Kind: KindFloat, Floats: li.Price},
		{Kind: KindFloat, Floats: li.Discount}})
	if err != nil {
		t.Fatal(err)
	}
	return src, want
}

func TestParallelQ6MatchesSerial(t *testing.T) {
	src, want := q6Source(t, 100000, 42)
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := ParallelQ6(src, workers, 7777)
		if err != nil {
			t.Fatal(err)
		}
		// Partial sums combine in nondeterministic order: allow float
		// rounding slack proportional to the magnitude.
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Errorf("workers=%d: got %.4f want %.4f", workers, got, want)
		}
	}
}

func TestParallelJoinSharedBuild(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	nb, np := 5000, 60000
	bk := make([]int64, nb)
	for i := range bk {
		bk[i] = r.Int63n(4000)
	}
	pk := make([]int64, np)
	for i := range pk {
		pk[i] = r.Int63n(4000)
	}
	ref := refRows(bk)
	var want int64
	for _, k := range pk {
		want += int64(len(ref[k]))
	}

	build, _ := NewSource([]string{"k"}, []Col{{Kind: KindInt, Ints: bk}})
	probe, _ := NewSource([]string{"k"}, []Col{{Kind: KindInt, Ints: pk}})
	jb, err := BuildJoinTable(NewScan(build, 0), 0, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := ParallelJoinCount(jb, probe, 0, workers, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: %d matches, want %d", workers, got, want)
		}
	}
}

type errOp struct{ n int }

func (e *errOp) Open() error { return nil }
func (e *errOp) Next() (*Batch, error) {
	e.n++
	if e.n > 2 {
		return nil, errors.New("boom")
	}
	return &Batch{N: 1, Cols: []Col{{Kind: KindInt, Ints: []int64{1}}}}, nil
}
func (e *errOp) Close() error { return nil }

func TestExchangeErrorPropagation(t *testing.T) {
	src, _ := NewSource([]string{"v"}, []Col{{Kind: KindInt, Ints: make([]int64, 100)}})
	ex := &Exchange{Source: src, Workers: 3, Plan: func(scan Operator) Operator { return &errOp{} }}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	var got error
	for {
		b, err := ex.Next()
		if err != nil {
			got = err
			break
		}
		if b == nil {
			break
		}
	}
	if got == nil || got.Error() != "boom" {
		t.Fatalf("err = %v, want boom", got)
	}
	ex.Close() // may re-report another worker's buffered error
}
