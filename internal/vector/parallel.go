package vector

// Morsel-driven parallelism for the vectorized engine: a Source is cut
// into fixed-size row ranges ("morsels") handed out by an atomic
// cursor; each worker runs its own copy of the per-batch pipeline
// (filters, projections, join probes against a shared read-only
// JoinBuild, partial aggregates) over the morsels it claims, and an
// Exchange operator funnels the workers' output batches back into the
// single-threaded consumer. This is the NUMA-oblivious core of
// morsel-driven scheduling grafted onto X100-style pipelines: the
// degree of parallelism is fixed at Open, but work distribution is
// dynamic, so skewed morsels do not stall the other workers.
//
// Aggregation parallelizes by re-aggregation: each worker's pipeline
// ends in its own Agg (partial sums/counts over the morsels it saw) and
// the consumer runs a final Agg over the Exchange that sums the partial
// columns. Sums of sums and sums of counts are exact; AggCount at the
// top level would count partial rows and is the caller's mistake.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselSize is the default morsel length in rows: big enough
// that claiming one costs a single atomic add per ~64K rows, small
// enough that GOMAXPROCS workers load-balance on skewed pipelines.
const DefaultMorselSize = 1 << 16

// MorselCursor hands out disjoint [lo,hi) row ranges of a Source to any
// number of concurrent claimants. An optional context cancels it: a
// canceled cursor stops handing out morsels, so every worker winds down
// at its next morsel boundary — in-flight morsels finish, new ones are
// never started. This bounds cancellation latency to one morsel's worth
// of work without any per-tuple (or even per-vector) check in the hot
// loops.
type MorselCursor struct {
	src  *Source
	size int
	ctx  context.Context // nil = never canceled
	pos  atomic.Int64
}

// NewMorselCursor returns a cursor over src with the given morsel size
// (DefaultMorselSize if <= 0).
func NewMorselCursor(src *Source, morselSize int) *MorselCursor {
	if morselSize <= 0 {
		morselSize = DefaultMorselSize
	}
	return &MorselCursor{src: src, size: morselSize}
}

// claim returns the next unclaimed morsel, or ok=false at end of input
// or after cancellation.
func (m *MorselCursor) claim() (lo, hi int, ok bool) {
	if m.ctx != nil && m.ctx.Err() != nil {
		return 0, 0, false
	}
	for {
		cur := m.pos.Load()
		if int(cur) >= m.src.n {
			return 0, 0, false
		}
		end := cur + int64(m.size)
		if int(end) > m.src.n {
			end = int64(m.src.n)
		}
		if m.pos.CompareAndSwap(cur, end) {
			return int(cur), int(end), true
		}
	}
}

// MorselScan is the per-worker scan: an Operator that claims morsels
// from a shared cursor and emits zero-copy vectors of at most Size rows
// from within each, exactly like Scan but over dynamically assigned
// ranges. With RowIDs set, each batch carries one extra trailing
// KindInt column of GLOBAL source row positions — the stable tiebreak
// the parallel Sort needs to reproduce a serial stable sort's order.
type MorselScan struct {
	Cur    *MorselCursor
	Size   int // vector size (DefaultSize if <= 0)
	RowIDs bool

	pos, hi int
	b       Batch
	rowids  []int64
}

// Open implements Operator.
func (s *MorselScan) Open() error {
	if s.Size <= 0 {
		s.Size = DefaultSize
	}
	s.pos, s.hi = 0, 0
	return nil
}

// Next implements Operator.
func (s *MorselScan) Next() (*Batch, error) {
	if s.pos >= s.hi {
		lo, hi, ok := s.Cur.claim()
		if !ok {
			return nil, nil
		}
		s.pos, s.hi = lo, hi
	}
	end := s.pos + s.Size
	if end > s.hi {
		end = s.hi
	}
	src := s.Cur.src
	n := len(src.Cols)
	if s.RowIDs {
		n++
	}
	cols := make([]Col, n)
	for i := range src.Cols {
		c := &src.Cols[i]
		cols[i] = Col{Kind: c.Kind}
		switch c.Kind {
		case KindInt:
			cols[i].Ints = c.Ints[s.pos:end]
		case KindFloat:
			cols[i].Floats = c.Floats[s.pos:end]
		case KindBool:
			cols[i].Bools = c.Bools[s.pos:end]
		}
	}
	if s.RowIDs {
		if cap(s.rowids) < end-s.pos {
			s.rowids = make([]int64, s.Size)
		}
		ids := s.rowids[:end-s.pos]
		for i := range ids {
			ids[i] = int64(s.pos + i)
		}
		cols[n-1] = Col{Kind: KindInt, Ints: ids}
	}
	s.b = Batch{N: end - s.pos, Cols: cols}
	s.pos = end
	return &s.b, nil
}

// Close implements Operator.
func (s *MorselScan) Close() error { return nil }

// Exchange is the parallelizing operator: it runs Workers copies of the
// pipeline fragment built by Plan — each on its own MorselScan over
// Source — and funnels their output batches to the caller. Batches are
// deep-copied before crossing the channel (workers recycle their
// buffers batch-to-batch), so downstream operators own what Next
// returns.
type Exchange struct {
	Source     *Source
	Workers    int // <= 0 means runtime.GOMAXPROCS(0)
	MorselSize int // <= 0 means DefaultMorselSize
	VectorSize int // <= 0 means DefaultSize
	// Plan builds one worker's pipeline fragment on top of its scan.
	// It is called once per worker and must not share mutable state
	// between the fragments it returns.
	Plan func(scan Operator) Operator
	// Ctx, when non-nil, cancels the exchange: workers observe it at
	// morsel boundaries (see MorselCursor) and Next reports ctx.Err()
	// once the workers have wound down.
	Ctx context.Context
	// RowIDs makes every worker's MorselScan append a trailing column of
	// global source row positions (see MorselScan.RowIDs).
	RowIDs bool

	ch      chan *Batch
	errs    chan error
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// NewParallelScan returns an Exchange that just scans src in parallel:
// the identity Plan. Useful as a building block and in tests.
func NewParallelScan(src *Source, workers int) *Exchange {
	//lint:ignore ctxmorsel bounded building block for tests and benchmarks; callers that need cancellation set Ctx on the returned Exchange
	return &Exchange{Source: src, Workers: workers, Plan: func(scan Operator) Operator { return scan }}
}

// Open implements Operator: spawns the workers.
func (e *Exchange) Open() error {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cursor := NewMorselCursor(e.Source, e.MorselSize)
	cursor.ctx = e.Ctx
	e.ch = make(chan *Batch, workers)
	e.errs = make(chan error, workers)
	e.stop = make(chan struct{})
	e.stopped = sync.Once{}
	for w := 0; w < workers; w++ {
		e.wg.Add(1)
		go e.worker(cursor)
	}
	go func() {
		e.wg.Wait()
		close(e.ch)
	}()
	return nil
}

func (e *Exchange) worker(cursor *MorselCursor) {
	defer e.wg.Done()
	op := e.Plan(&MorselScan{Cur: cursor, Size: e.VectorSize, RowIDs: e.RowIDs})
	if err := op.Open(); err != nil {
		e.errs <- err
		return
	}
	defer op.Close()
	for {
		b, err := op.Next()
		if err != nil {
			e.errs <- err
			return
		}
		if b == nil {
			// End of stream — or a canceled cursor that stopped handing
			// out morsels. Report the cancellation so the consumer can
			// distinguish a complete result from an aborted one.
			if e.Ctx != nil && e.Ctx.Err() != nil {
				e.errs <- e.Ctx.Err()
			}
			return
		}
		select {
		case e.ch <- cloneBatch(b):
		case <-e.stop:
			return
		}
	}
}

// Next implements Operator: returns the next worker batch, or the first
// worker error once all workers have exited.
func (e *Exchange) Next() (*Batch, error) {
	b, ok := <-e.ch
	if !ok {
		select {
		case err := <-e.errs:
			return nil, err
		default:
			return nil, nil
		}
	}
	return b, nil
}

// Close implements Operator: stops and joins the workers. It is
// idempotent, and a no-op when Open was never called (e.ch is then nil:
// closing the nil e.stop would panic and ranging over a nil channel
// would block forever).
func (e *Exchange) Close() error {
	if e.ch == nil {
		return nil
	}
	e.stopped.Do(func() { close(e.stop) })
	for range e.ch { // drain until the closer goroutine closes it
	}
	select {
	case err := <-e.errs:
		return err
	default:
		return nil
	}
}

// --- canned morsel-parallel plans (benchmarks, experiments, tests) ---

// Q6Preds are the TPC-H Q6 predicates over columns (qty, price, disc).
func q6WorkerPlan(scan Operator) Operator {
	return &Agg{
		Child: &Project{
			Child: &Filter{Child: scan, Preds: []Pred{
				{ColIdx: 0, Op: PredLt, IntVal: 24},
				{ColIdx: 2, Op: PredGeF, FltVal: 0.05},
				{ColIdx: 2, Op: PredLeF, FltVal: 0.07}}},
			Exprs: []Expr{Bin{Op: EMulFloat, L: ColRef{1}, R: Bin{Op: ESubConstFloat, FltConst: 1, L: ColRef{2}}}},
		},
		KeyCol: -1, Aggs: []AggSpec{{Kind: AggSumFloat, Col: 0}}}
}

// ParallelQ6 is the morsel-parallel TPC-H Q6 plan over a (qty, price,
// disc) source: per-worker filter+project+partial-sum fragments under an
// Exchange, re-aggregated by a final sum. Used by the root benchmarks
// and experiment E15.
func ParallelQ6(src *Source, workers, morselSize int) (float64, error) {
	final := &Agg{
		//lint:ignore ctxmorsel canned benchmark/experiment plan over an in-memory source; bounded work with no cancellation surface
		Child:  &Exchange{Source: src, Workers: workers, MorselSize: morselSize, Plan: q6WorkerPlan},
		KeyCol: -1, Aggs: []AggSpec{{Kind: AggSumFloat, Col: 0}},
	}
	rows, err := Drain(final)
	if err != nil {
		return 0, err
	}
	return rows[0][0].(float64), nil
}

// ParallelJoinCount probes a shared read-only JoinBuild from `workers`
// morsel-parallel pipelines and returns the total number of matches:
// each worker counts its own matches, the final Agg sums the counts.
func ParallelJoinCount(jb *JoinBuild, probe *Source, probeKey, workers, morselSize int) (int64, error) {
	plan := func(scan Operator) Operator {
		return &Agg{
			Child:  &HashJoinOp{Probe: scan, ProbeKey: probeKey, Shared: jb},
			KeyCol: -1, Aggs: []AggSpec{{Kind: AggCount}},
		}
	}
	final := &Agg{
		//lint:ignore ctxmorsel canned benchmark/experiment plan over an in-memory source; bounded work with no cancellation surface
		Child:  &Exchange{Source: probe, Workers: workers, MorselSize: morselSize, Plan: plan},
		KeyCol: -1, Aggs: []AggSpec{{Kind: AggSumInt, Col: 0}},
	}
	rows, err := Drain(final)
	if err != nil {
		return 0, err
	}
	return rows[0][0].(int64), nil
}

// cloneBatch deep-copies a batch so it survives the producing worker's
// buffer recycling. Batches with a selection vector are compacted to
// just the qualifying rows, so the bytes crossing the exchange are
// proportional to the fragment's output, not its input.
func cloneBatch(b *Batch) *Batch {
	if b.Sel == nil {
		nb := &Batch{N: b.N, Cols: make([]Col, len(b.Cols))}
		for i := range b.Cols {
			c := &b.Cols[i]
			nb.Cols[i] = Col{Kind: c.Kind}
			switch c.Kind {
			case KindInt:
				nb.Cols[i].Ints = append([]int64(nil), c.Ints...)
			case KindFloat:
				nb.Cols[i].Floats = append([]float64(nil), c.Floats...)
			case KindBool:
				nb.Cols[i].Bools = append([]bool(nil), c.Bools...)
			}
		}
		return nb
	}
	n := len(b.Sel)
	nb := &Batch{N: n, Cols: make([]Col, len(b.Cols))}
	for i := range b.Cols {
		c := &b.Cols[i]
		nb.Cols[i] = Col{Kind: c.Kind}
		switch c.Kind {
		case KindInt:
			out := make([]int64, n)
			for k, idx := range b.Sel {
				out[k] = c.Ints[idx]
			}
			nb.Cols[i].Ints = out
		case KindFloat:
			out := make([]float64, n)
			for k, idx := range b.Sel {
				out[k] = c.Floats[idx]
			}
			nb.Cols[i].Floats = out
		case KindBool:
			out := make([]bool, n)
			for k, idx := range b.Sel {
				out[k] = c.Bools[idx]
			}
			nb.Cols[i].Bools = out
		}
	}
	return nb
}
