package vector

import "repro/internal/radix"

// MultiGrouper assigns dense group ids over composite keys of ANY
// width K through radix.MultiGroupTable — the grouping engine behind
// GROUP BY with more than two key columns. It gathers each row's key
// tuple into a reused scratch slice (no per-row allocation) and keeps
// the dense per-column key arrays callers shape output from, same as
// PairGrouper. bat.NilInt is a legal key in every position.
type MultiGrouper struct {
	T    *radix.MultiGroupTable
	Keys [][]int64 // Keys[c][gid] -> key column c of group gid
	tup  []int64
}

// NewMultiGrouper returns a grouper for K key columns pre-sized for
// hint distinct tuples.
func NewMultiGrouper(k, hint int) *MultiGrouper {
	return &MultiGrouper{
		T:    radix.NewMultiGroupTable(k, hint),
		Keys: make([][]int64, k),
		tup:  make([]int64, k),
	}
}

// Assign maps each qualifying row of the key columns to a dense group
// id, writing ids into gids (full-length, indexed by row) and returning
// the total group count so far. cols must all have the batch's length.
func (g *MultiGrouper) Assign(cols [][]int64, sel []int32, gids []int32) int32 {
	one := func(i int32) {
		for c, col := range cols {
			g.tup[c] = col[i]
		}
		gid := g.T.GID(g.tup)
		if int(gid) == len(g.Keys[0]) { // first sight of this tuple
			for c := range g.Keys {
				g.Keys[c] = append(g.Keys[c], g.tup[c])
			}
		}
		gids[i] = gid
	}
	if sel == nil {
		for i := range cols[0] {
			one(int32(i))
		}
	} else {
		for _, i := range sel {
			one(i)
		}
	}
	return int32(g.T.Len())
}

// MemBytes returns the grouper's live footprint (table + dense key
// arrays) for the memory governor's ledger.
func (g *MultiGrouper) MemBytes() int64 {
	n := g.T.MemBytes()
	for _, ks := range g.Keys {
		n += int64(cap(ks)) * 8
	}
	return n
}
