package vector

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func joinPlan(t *testing.T, ok, pk []int64, pay []float64, size int, row bool) [][]any {
	t.Helper()
	build, err := NewSource([]string{"cid", "weight"}, []Col{
		{Kind: KindInt, Ints: ok}, {Kind: KindFloat, Floats: pay}})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := NewSource([]string{"cust"}, []Col{{Kind: KindInt, Ints: pk}})
	if err != nil {
		t.Fatal(err)
	}
	j := &HashJoinOp{
		Build: NewScan(build, size), Probe: NewScan(probe, size),
		BuildKey: 0, ProbeKey: 0,
		BuildPayload: []int{1, 0},
		RowLayout:    row,
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestHashJoinOpBasic(t *testing.T) {
	bk := []int64{10, 20, 10}
	pay := []float64{1.5, 2.5, 3.5}
	pk := []int64{20, 10, 99}
	for _, row := range []bool{false, true} {
		rows := joinPlan(t, bk, pk, pay, 2, row)
		// probe 20 -> (20, 2.5, 20); probe 10 -> two matches.
		if len(rows) != 3 {
			t.Fatalf("row=%v: rows = %v", row, rows)
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i][0] != rows[j][0] {
				return rows[i][0].(int64) < rows[j][0].(int64)
			}
			return rows[i][1].(float64) < rows[j][1].(float64)
		})
		want := [][]any{
			{int64(10), 1.5, int64(10)},
			{int64(10), 3.5, int64(10)},
			{int64(20), 2.5, int64(20)},
		}
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("row=%v: rows = %v", row, rows)
		}
	}
}

func TestHashJoinOpNoMatches(t *testing.T) {
	rows := joinPlan(t, []int64{1}, []int64{2, 3}, []float64{9}, 1, false)
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashJoinOpWithFilteredProbe(t *testing.T) {
	build, _ := NewSource([]string{"k", "v"}, []Col{
		{Kind: KindInt, Ints: []int64{1, 2}},
		{Kind: KindInt, Ints: []int64{100, 200}}})
	probe, _ := NewSource([]string{"k"}, []Col{{Kind: KindInt, Ints: []int64{1, 2, 1}}})
	j := &HashJoinOp{
		Build: NewScan(build, 4),
		Probe: &Filter{Child: NewScan(probe, 4),
			Preds: []Pred{{ColIdx: 0, Op: PredEq, IntVal: 1}}},
		BuildKey: 0, ProbeKey: 0, BuildPayload: []int{1},
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][1] != int64(100) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashJoinOpBadColumns(t *testing.T) {
	src, _ := NewSource([]string{"k"}, []Col{{Kind: KindInt, Ints: []int64{1}}})
	j := &HashJoinOp{Build: NewScan(src, 4), Probe: NewScan(src, 4),
		BuildKey: 5, ProbeKey: 0}
	if err := j.Open(); err == nil {
		t.Fatal("expected key-out-of-range error")
	}
	src2, _ := NewSource([]string{"k"}, []Col{{Kind: KindInt, Ints: []int64{1}}})
	j2 := &HashJoinOp{Build: NewScan(src2, 4), Probe: NewScan(src2, 4),
		BuildKey: 0, ProbeKey: 0, BuildPayload: []int{7}}
	if err := j2.Open(); err == nil {
		t.Fatal("expected payload-out-of-range error")
	}
}

// Property: DSM and NSM payload layouts produce identical join results for
// arbitrary inputs and vector sizes.
func TestQuickJoinLayoutsAgree(t *testing.T) {
	f := func(bk, pk []uint8, size8 uint8) bool {
		if len(bk) > 50 {
			bk = bk[:50]
		}
		if len(pk) > 50 {
			pk = pk[:50]
		}
		size := int(size8%16) + 1
		bkeys := make([]int64, len(bk))
		pay := make([]float64, len(bk))
		for i, v := range bk {
			bkeys[i] = int64(v % 8)
			pay[i] = float64(i) + 0.5
		}
		pkeys := make([]int64, len(pk))
		for i, v := range pk {
			pkeys[i] = int64(v % 8)
		}
		t2 := &testing.T{}
		dsm := joinPlan(t2, bkeys, pkeys, pay, size, false)
		nsm := joinPlan(t2, bkeys, pkeys, pay, size, true)
		norm := func(rows [][]any) {
			sort.Slice(rows, func(i, j int) bool {
				if rows[i][0] != rows[j][0] {
					return rows[i][0].(int64) < rows[j][0].(int64)
				}
				return rows[i][1].(float64) < rows[j][1].(float64)
			})
		}
		norm(dsm)
		norm(nsm)
		return reflect.DeepEqual(dsm, nsm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkJoinLayout measures the §5/[46] tradeoff: with a wide build
// payload, row-wise regrouping touches one line per match where columnar
// touches one per column.
func BenchmarkJoinLayout(b *testing.B) {
	n := 1 << 18
	r := rand.New(rand.NewSource(1))
	nPay := 6
	cols := make([]Col, nPay+1)
	names := make([]string, nPay+1)
	names[0] = "k"
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	cols[0] = Col{Kind: KindInt, Ints: keys}
	payload := make([]int, nPay)
	for c := 1; c <= nPay; c++ {
		v := make([]int64, n)
		for i := range v {
			v[i] = r.Int63()
		}
		cols[c] = Col{Kind: KindInt, Ints: v}
		names[c] = "p"
		payload[c-1] = c
	}
	build, err := NewSource(names, cols)
	if err != nil {
		b.Fatal(err)
	}
	pkeys := make([]int64, n)
	for i := range pkeys {
		pkeys[i] = int64(r.Intn(n))
	}
	probe, err := NewSource([]string{"k"}, []Col{{Kind: KindInt, Ints: pkeys}})
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range []bool{false, true} {
		name := "dsm"
		if row {
			name = "nsm-regrouped"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := &HashJoinOp{
					Build: NewScan(build, 1024), Probe: NewScan(probe, 1024),
					BuildKey: 0, ProbeKey: 0, BuildPayload: payload, RowLayout: row,
				}
				if err := j.Open(); err != nil {
					b.Fatal(err)
				}
				for {
					batch, err := j.Next()
					if err != nil {
						b.Fatal(err)
					}
					if batch == nil {
						break
					}
				}
				j.Close()
			}
		})
	}
}
