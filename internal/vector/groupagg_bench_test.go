package vector

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/radix"
)

// BenchmarkGroupedAgg is the grouped-aggregation sweep recorded in
// BENCH_pr4.json: SELECT k, sum(v) GROUP BY k over 1M rows at group
// cardinalities 10 → 1M, across four engines:
//
//   - serial-map:    the PR-3-era per-batch map grouping
//   - serial-table:  the open-addressing Agg, one worker's pipeline
//   - parallel:      per-worker partial tables + merge (ParallelGroupAgg)
//   - partitioned:   shared-nothing radix-partitioned (PartitionedGroupAgg)
//
// On a 1-core host the parallel variants measure their overhead, not
// their scaling; re-run on a multi-core machine for speedups.
func BenchmarkGroupedAgg(b *testing.B) {
	const n = 1 << 20
	workers := runtime.GOMAXPROCS(0)
	for _, card := range []int{10, 1000, 100000, 1 << 20} {
		rng := rand.New(rand.NewSource(3))
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63n(int64(card))
			vals[i] = rng.Int63n(1000)
		}
		src, err := NewSource([]string{"k", "v"}, []Col{
			{Kind: KindInt, Ints: keys},
			{Kind: KindInt, Ints: vals},
		})
		if err != nil {
			b.Fatal(err)
		}
		specs := []AggSpec{{Kind: AggSumIntNil, Col: 1}}

		b.Run(fmt.Sprintf("serial-map-card%d", card), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if g := mapGroupSum(keys, vals); len(g) == 0 {
					b.Fatal("no groups")
				}
			}
		})
		b.Run(fmt.Sprintf("serial-table-card%d", card), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := &Agg{Child: NewScan(src, DefaultSize), KeyCol: 0, Aggs: specs}
				if err := a.Open(); err != nil {
					b.Fatal(err)
				}
				out, err := a.Next()
				if err != nil || out == nil || out.N == 0 {
					b.Fatalf("out=%v err=%v", out, err)
				}
				a.Close()
			}
		})
		b.Run(fmt.Sprintf("parallel-card%d", card), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := ParallelGroupAgg(context.Background(), src, []int{0}, specs, nil, workers, DefaultMorselSize, DefaultSize)
				if err != nil || out.N == 0 {
					b.Fatalf("groups=%d err=%v", out.N, err)
				}
			}
		})
		b.Run(fmt.Sprintf("partitioned-card%d", card), func(b *testing.B) {
			bits := radix.GroupBits(card)
			if bits == 0 {
				bits = 4 // force real partitioning even at low cardinality
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := PartitionedGroupAgg(context.Background(), src, 0, specs, workers, bits)
				if err != nil || out.N == 0 {
					b.Fatalf("groups=%d err=%v", out.N, err)
				}
			}
		})
	}
}

// mapGroupSum is the PR-3-era map-based grouped sum, kept as the
// benchmark baseline.
func mapGroupSum(keys, vals []int64) map[int64]int64 {
	groups := make(map[int64]int32)
	var sums []int64
	for i, k := range keys {
		g, ok := groups[k]
		if !ok {
			g = int32(len(groups))
			groups[k] = g
			sums = append(sums, 0)
		}
		sums[g] += vals[i]
	}
	out := make(map[int64]int64, len(groups))
	for k, g := range groups {
		out[k] = sums[g]
	}
	return out
}
