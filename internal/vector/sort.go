package vector

// ORDER BY for the vectorized engine, in two composable operators:
//
//   - SortRun is the per-worker fragment tail: it drains its child (the
//     morsels this worker claimed, post-filter), materializes the
//     qualifying rows, and emits them as ONE sorted run. Workers sort
//     disjoint cache-resident-ish slices in parallel — the expensive
//     O(n log n) comparisons parallelize, and each run is produced with
//     zero coordination.
//
//   - MergeRuns sits on the consumer side of the Exchange: it collects
//     the workers' runs and k-way merges them through a binary heap,
//     emitting vector-sized batches. k equals the worker count, so the
//     merge is a cheap sequential pass.
//
// Total order is DETERMINISTIC and matches the MAL interpreter's sort
// exactly: ties break on a global row id (the trailing column a
// RowIDs-enabled MorselScan emits), so ascending order equals a stable
// sort by key over the original row order, and descending order is its
// exact reverse — the same contract batalg.Sort/SortDesc implement. Nil
// keys (bat.NilInt for ints, NaN for floats) sort FIRST ascending and
// therefore last descending.
//
// LIMIT pushes down twice: each run truncates to the first Limit rows
// (no worker ships more than the query can return), and the merge stops
// once Limit rows have been emitted.
//
// EXTERNAL sort rides the same two operators: a SortRun given a memory
// Reservation charges each buffered batch against it, and when a grant
// is denied under the Spill policy it sorts what it holds, writes it to
// a spill file (sorted and Limit-truncated, so the on-disk run obeys
// the same invariants as an in-memory one), releases the memory, and
// keeps draining. MergeRuns then merges in-memory runs and streaming
// readers over the spilled ones through the one k-way heap — the
// textbook run-and-merge external sort, degraded to incrementally from
// the in-memory plan.

import (
	"repro/internal/bat"
	"repro/internal/memgov"

	"errors"
	"fmt"
	"sort"
)

// SortRun drains Child and emits its rows as one sorted batch (a "run").
// Key and RowID index Child's output columns; RowID is the global-row-id
// tiebreak column (use Exchange.RowIDs to produce it) and may be -1 for
// an unstable run. Limit >= 0 truncates the run.
//
// Ties, when non-empty, lists VALUE tiebreak columns compared (in
// order, nil-first like the key) between the key and the row id. Join
// results need them: both executors of one query sort the join output
// by (key, every output column) — a canonical lexicographic order that
// does not depend on the nondeterministic order either engine produced
// the matches in. Desc reverses the ENTIRE comparator, ties included;
// rows equal on key and all tie columns are identical rows, so the
// order within such a run is immaterial.
//
// With Res set, every buffered batch is charged to the reservation;
// when a charge is denied and Res.CanSpill() with Spill/Runs wired,
// the buffer — including the denied batch, which is folded in
// uncharged so progress never waits on a sibling worker's release —
// is sorted and spilled as one run (registered in Runs for MergeRuns
// to pick up) and buffering starts over. Without spill wiring a
// denied charge fails the query with memgov.ErrExceeded.
type SortRun struct {
	Child Operator
	Key   int
	RowID int   // tiebreak column; -1 = none
	Ties  []int // value tiebreak columns, compared before RowID
	Desc  bool
	Limit int // -1 = unlimited

	Res   *memgov.Reservation // nil = ungoverned
	Spill SpillSink           // nil = spilling unavailable
	Runs  *RunSet             // registry the merge side reads
	Size  int                 // spill chunk rows (DefaultSize if <= 0)

	out     Batch
	done    bool
	charged int64
}

// Open implements Operator.
func (s *SortRun) Open() error {
	s.done = false
	return s.Child.Open()
}

func (s *SortRun) canSpill() bool {
	return s.Res.CanSpill() && s.Spill != nil && s.Runs != nil
}

// Next implements Operator: the single sorted run, then end of stream.
func (s *SortRun) Next() (*Batch, error) {
	if s.done {
		return nil, nil
	}
	s.done = true

	// Materialize the qualifying rows column-wise (selection vectors
	// applied — a sort output has no use for them).
	var cols []Col
	n := 0
	for {
		b, err := s.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if cols == nil {
			cols = make([]Col, len(b.Cols))
			for i := range b.Cols {
				cols[i].Kind = b.Cols[i].Kind
			}
		}
		spillAfter := false
		if add := batchBytes(b); s.Res != nil {
			if s.canSpill() && s.charged+add > s.Res.Limit()/2 {
				// Soft cap at half the budget: the producer feeding this
				// sort may itself need a grant to make the NEXT batch (a
				// grace join's per-partition build table, for one), and a
				// buffer grown right up to the limit starves it at exactly
				// the moment it re-acquires. Fold the batch in uncharged
				// and spill the run now while headroom still exists.
				spillAfter = true
			} else if err := s.Res.Acquire(add); err != nil {
				if !s.canSpill() {
					return nil, err
				}
				// Over grant: fold this batch into the buffer UNCHARGED,
				// spill the whole thing as one sorted run below, and start
				// fresh. Progress must never wait on a sibling worker's
				// release — the workers share one reservation, so a worker
				// that buffered nothing yet can be denied while the others
				// hold the entire grant, and failing here would turn that
				// scheduling accident into a spurious query error.
				spillAfter = true
			} else {
				s.charged += add
			}
		}
		// The kind dispatch is hoisted out of the per-row loop: one typed
		// copy loop per column, as in the primitives.
		for i := range b.Cols {
			c := &b.Cols[i]
			oc := &cols[i]
			switch c.Kind {
			case KindInt:
				if b.Sel == nil {
					oc.Ints = append(oc.Ints, c.Ints...)
				} else {
					for _, r := range b.Sel {
						oc.Ints = append(oc.Ints, c.Ints[r])
					}
				}
			case KindFloat:
				if b.Sel == nil {
					oc.Floats = append(oc.Floats, c.Floats...)
				} else {
					for _, r := range b.Sel {
						oc.Floats = append(oc.Floats, c.Floats[r])
					}
				}
			case KindBool:
				if b.Sel == nil {
					oc.Bools = append(oc.Bools, c.Bools...)
				} else {
					for _, r := range b.Sel {
						oc.Bools = append(oc.Bools, c.Bools[r])
					}
				}
			}
		}
		n += b.Rows()
		if spillAfter {
			if err := s.spillRun(cols, n); err != nil {
				return nil, err
			}
			for i := range cols {
				cols[i] = Col{Kind: cols[i].Kind}
			}
			n = 0
		}
	}
	if n == 0 {
		return nil, nil
	}

	perm, err := sortPerm(cols, n, s.Key, s.RowID, s.Ties, s.Desc, s.Limit)
	if err != nil {
		return nil, err
	}
	out := make([]Col, len(cols))
	gatherPerm(cols, perm, out)
	s.out = Batch{N: len(perm), Cols: out}
	return &s.out, nil
}

// spillRun sorts the buffered n rows, writes them (Limit-truncated) to
// one spill file in Size-row chunks, registers the sealed run, and
// releases the buffer's reservation.
func (s *SortRun) spillRun(cols []Col, n int) error {
	perm, err := sortPerm(cols, n, s.Key, s.RowID, s.Ties, s.Desc, s.Limit)
	if err != nil {
		return err
	}
	w, err := s.Spill("sortrun")
	if err != nil {
		return err
	}
	size := s.Size
	if size <= 0 {
		size = DefaultSize
	}
	chunk := make([]Col, len(cols))
	for off := 0; off < len(perm); off += size {
		end := off + size
		if end > len(perm) {
			end = len(perm)
		}
		gatherPerm(cols, perm[off:end], chunk)
		if err := w.WriteBatch(&Batch{N: end - off, Cols: chunk}); err != nil {
			return err
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	s.Runs.Add(run)
	s.Res.Release(s.charged)
	s.charged = 0
	return nil
}

// sortPerm builds the sorted (and Limit-truncated) row permutation of
// the first n rows of cols.
func sortPerm(cols []Col, n, key, rowID int, ties []int, desc bool, limit int) ([]int32, error) {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	less, err := rowLess(cols, key, rowID, ties, desc)
	if err != nil {
		return nil, err
	}
	sort.Slice(perm, func(i, j int) bool { return less(perm[i], perm[j]) })
	if limit >= 0 && limit < n {
		// Rows past the limit cannot survive the merge: every run
		// contributes at most Limit rows to the first Limit of the total.
		perm = perm[:limit]
	}
	return perm, nil
}

// gatherPerm gathers the rows perm of cols into out (same arity),
// reusing out's storage where capacity allows.
func gatherPerm(cols []Col, perm []int32, out []Col) {
	n := len(perm)
	for i := range cols {
		c := &cols[i]
		oc := &out[i]
		oc.Kind = c.Kind
		switch c.Kind {
		case KindInt:
			if cap(oc.Ints) < n {
				oc.Ints = make([]int64, n)
			}
			oc.Ints = oc.Ints[:n]
			for k, p := range perm {
				oc.Ints[k] = c.Ints[p]
			}
		case KindFloat:
			if cap(oc.Floats) < n {
				oc.Floats = make([]float64, n)
			}
			oc.Floats = oc.Floats[:n]
			for k, p := range perm {
				oc.Floats[k] = c.Floats[p]
			}
		case KindBool:
			if cap(oc.Bools) < n {
				oc.Bools = make([]bool, n)
			}
			oc.Bools = oc.Bools[:n]
			for k, p := range perm {
				oc.Bools[k] = c.Bools[p]
			}
		}
	}
}

// Close implements Operator: hands any still-charged buffer memory
// back to the reservation.
func (s *SortRun) Close() error {
	if s.charged != 0 {
		s.Res.Release(s.charged)
		s.charged = 0
	}
	return s.Child.Close()
}

// SortedPerm builds the row permutation ordering the first n rows of
// cols by (key, ties...) — the materialized-batch entry point the
// physical layer's grouped ORDER BY uses (no row-id column, no limit).
func SortedPerm(cols []Col, n, key int, ties []int, desc bool) ([]int32, error) {
	return sortPerm(cols, n, key, -1, ties, desc, -1)
}

// ApplyPerm gathers the rows perm of cols into freshly built columns.
func ApplyPerm(cols []Col, perm []int32) []Col {
	out := make([]Col, len(cols))
	gatherPerm(cols, perm, out)
	return out
}

// cmpCell compares row ap of column a against row bp of column b (same
// kind, int or float; float nils — NaN — order first).
func cmpCell(a, b *Col, ap, bp int32) int {
	if a.Kind == KindInt {
		x, y := a.Ints[ap], b.Ints[bp]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	x, y := a.Floats[ap], b.Floats[bp]
	switch {
	case bat.IsNilFloat(x) && bat.IsNilFloat(y):
		return 0
	case bat.IsNilFloat(x):
		return -1
	case bat.IsNilFloat(y):
		return 1
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// rowLess builds the (key, ties..., rowid) comparator over a column
// set. The descending order is the exact REVERSE of the ascending one
// (key descending, every tiebreak descending) — reproducing
// batalg.SortDesc, which reverses a stable ascending sort.
func rowLess(cols []Col, key, rowID int, ties []int, desc bool) (func(a, b int32) bool, error) {
	if len(ties) > 0 {
		chain := append([]int{key}, ties...)
		for _, ci := range chain {
			if k := cols[ci].Kind; k != KindInt && k != KindFloat {
				return nil, fmt.Errorf("vector: sort key column %d has unsortable kind", ci)
			}
		}
		var rid []int64
		if rowID >= 0 {
			rid = cols[rowID].Ints
		}
		cmp := func(a, b int32) int {
			for _, ci := range chain {
				if c := cmpCell(&cols[ci], &cols[ci], a, b); c != 0 {
					return c
				}
			}
			return 0
		}
		if desc {
			return func(a, b int32) bool {
				if c := cmp(a, b); c != 0 {
					return c > 0
				}
				return rid != nil && rid[a] > rid[b]
			}, nil
		}
		return func(a, b int32) bool {
			if c := cmp(a, b); c != 0 {
				return c < 0
			}
			return rid != nil && rid[a] < rid[b]
		}, nil
	}
	var cmp func(a, b int32) int
	switch cols[key].Kind {
	case KindInt:
		k := cols[key].Ints
		cmp = func(a, b int32) int {
			x, y := k[a], k[b]
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
	case KindFloat:
		k := cols[key].Floats
		// NaN is the float nil: order it below every real value (matching
		// int tails, where the nil sentinel is the domain minimum).
		cmp = func(a, b int32) int {
			x, y := k[a], k[b]
			if bat.IsNilFloat(x) {
				if bat.IsNilFloat(y) {
					return 0
				}
				return -1
			}
			if bat.IsNilFloat(y) {
				return 1
			}
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
	default:
		return nil, fmt.Errorf("vector: sort key column %d has unsortable kind", key)
	}
	var tie []int64
	if rowID >= 0 {
		tie = cols[rowID].Ints
	}
	if desc {
		return func(a, b int32) bool {
			c := cmp(a, b)
			if c != 0 {
				return c > 0
			}
			return tie != nil && tie[a] > tie[b]
		}, nil
	}
	return func(a, b int32) bool {
		c := cmp(a, b)
		if c != 0 {
			return c < 0
		}
		return tie != nil && tie[a] < tie[b]
	}, nil
}

// MergeRuns k-way merges the sorted runs its child produces (one batch
// per run, typically an Exchange over SortRun fragments) into globally
// ordered vector-sized batches. Key/RowID/Desc must match the runs'
// sort order; Limit >= 0 stops the merge after that many rows.
//
// Ext, when set, contributes SPILLED runs to the same heap: each is
// streamed chunk-by-chunk through its SpillReader, so the merge holds
// one vector-sized batch per spilled run, not the run itself — the
// memory floor of the external sort's merge phase is k chunks. Ext is
// read AFTER the child is fully drained; with an Exchange child that
// barrier guarantees every worker has registered its spilled runs.
type MergeRuns struct {
	Child Operator
	Key   int
	RowID int
	Ties  []int // value tiebreak columns, matching the runs' order
	Desc  bool
	Limit int     // -1 = unlimited
	Size  int     // output vector size (DefaultSize if <= 0)
	Ext   *RunSet // spilled runs joining the merge; may be nil

	cur     []*Batch      // current batch per run
	srcs    []SpillReader // streaming source per run; nil = in-memory
	heap    []runCursor
	less    func(a, b runCursor) bool
	emitted int
	started bool
	out     Batch
}

// runCursor points at the next unconsumed row of one run's current
// batch.
type runCursor struct {
	run int32
	pos int32
}

// Open implements Operator.
func (m *MergeRuns) Open() error {
	m.cur, m.srcs, m.heap, m.less = nil, nil, nil, nil
	m.emitted = 0
	m.started = false
	if m.Size <= 0 {
		m.Size = DefaultSize
	}
	return m.Child.Open()
}

// start drains the child, opens the spilled runs, and seeds the heap.
func (m *MergeRuns) start() error {
	m.started = true
	for {
		b, err := m.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.Rows() == 0 {
			continue
		}
		if b.Sel != nil {
			return fmt.Errorf("vector: merge input runs must be compacted")
		}
		m.cur = append(m.cur, b)
		m.srcs = append(m.srcs, nil)
	}
	if m.Ext != nil {
		for _, run := range m.Ext.Take() {
			rd, err := run.Open()
			if err != nil {
				return err
			}
			b, err := m.fill(rd)
			if err != nil {
				return errors.Join(err, rd.Close())
			}
			if b == nil {
				if err := rd.Close(); err != nil {
					return err
				}
				continue
			}
			m.cur = append(m.cur, b)
			m.srcs = append(m.srcs, rd)
		}
	}
	if len(m.cur) == 0 {
		return nil
	}
	for _, ci := range append([]int{m.Key}, m.Ties...) {
		if k := m.cur[0].Cols[ci].Kind; k != KindInt && k != KindFloat {
			return fmt.Errorf("vector: sort key column %d has unsortable kind", ci)
		}
	}
	// Rows live in different runs, so the comparator gathers through the
	// (run, pos) cursors. It indexes the runs' CURRENT batches, which
	// refilling swaps under the heap — but only after every row of the
	// previous batch has left it.
	m.less = func(a, b runCursor) bool {
		return mergeLess(m.cur[a.run].Cols, m.cur[b.run].Cols, a.pos, b.pos, m.Key, m.RowID, m.Ties, m.Desc)
	}
	for ri := range m.cur {
		m.push(runCursor{run: int32(ri), pos: 0})
	}
	return nil
}

// fill pulls the next non-empty batch from a spill reader.
func (m *MergeRuns) fill(rd SpillReader) (*Batch, error) {
	for {
		b, err := rd.Next()
		if err != nil || b == nil {
			return nil, err
		}
		if b.N > 0 {
			return b, nil
		}
	}
}

// mergeLess compares row ap of column set ac against row bp of bc.
func mergeLess(ac, bc []Col, ap, bp int32, key, rowID int, ties []int, desc bool) bool {
	c := cmpCell(&ac[key], &bc[key], ap, bp)
	for _, ti := range ties {
		if c != 0 {
			break
		}
		c = cmpCell(&ac[ti], &bc[ti], ap, bp)
	}
	if desc {
		if c != 0 {
			return c > 0
		}
		return rowID >= 0 && ac[rowID].Ints[ap] > bc[rowID].Ints[bp]
	}
	if c != 0 {
		return c < 0
	}
	return rowID >= 0 && ac[rowID].Ints[ap] < bc[rowID].Ints[bp]
}

func (m *MergeRuns) push(c runCursor) {
	m.heap = append(m.heap, c)
	i := len(m.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !m.less(m.heap[i], m.heap[p]) {
			break
		}
		m.heap[i], m.heap[p] = m.heap[p], m.heap[i]
		i = p
	}
}

func (m *MergeRuns) pop() runCursor {
	top := m.heap[0]
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap = m.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(m.heap) && m.less(m.heap[l], m.heap[small]) {
			small = l
		}
		if r < len(m.heap) && m.less(m.heap[r], m.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		m.heap[i], m.heap[small] = m.heap[small], m.heap[i]
		i = small
	}
	return top
}

// Next implements Operator: the next vector-sized slice of the merged
// order.
func (m *MergeRuns) Next() (*Batch, error) {
	if !m.started {
		if err := m.start(); err != nil {
			return nil, err
		}
	}
	if len(m.heap) == 0 {
		return nil, nil
	}
	want := m.Size
	if m.Limit >= 0 {
		if left := m.Limit - m.emitted; left < want {
			want = left
		}
	}
	if want <= 0 {
		m.heap = m.heap[:0]
		return nil, nil
	}

	tmpl := m.cur[0].Cols
	cols := make([]Col, len(tmpl))
	for i := range tmpl {
		cols[i] = Col{Kind: tmpl[i].Kind}
	}
	n := 0
	for n < want && len(m.heap) > 0 {
		cur := m.pop()
		rb := m.cur[cur.run]
		for ci := range rb.Cols {
			c := &rb.Cols[ci]
			oc := &cols[ci]
			switch c.Kind {
			case KindInt:
				oc.Ints = append(oc.Ints, c.Ints[cur.pos])
			case KindFloat:
				oc.Floats = append(oc.Floats, c.Floats[cur.pos])
			case KindBool:
				oc.Bools = append(oc.Bools, c.Bools[cur.pos])
			}
		}
		n++
		if int(cur.pos)+1 < rb.N {
			m.push(runCursor{run: cur.run, pos: cur.pos + 1})
		} else if rd := m.srcs[cur.run]; rd != nil {
			// This run streams from disk: refill its current batch. Every
			// row of the old batch has been copied out, so the reader may
			// reuse its storage.
			nb, err := m.fill(rd)
			if err != nil {
				return nil, err
			}
			if nb == nil {
				if err := rd.Close(); err != nil {
					return nil, err
				}
				m.srcs[cur.run] = nil
			} else {
				m.cur[cur.run] = nb
				m.push(runCursor{run: cur.run, pos: 0})
			}
		}
	}
	m.emitted += n
	m.out = Batch{N: n, Cols: cols}
	return &m.out, nil
}

// Close implements Operator: any spill readers still open (a LIMIT can
// end the merge early) are closed here.
func (m *MergeRuns) Close() error {
	var errs []error
	for i, rd := range m.srcs {
		if rd == nil {
			continue
		}
		if err := rd.Close(); err != nil {
			errs = append(errs, err)
		}
		m.srcs[i] = nil
	}
	if err := m.Child.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
