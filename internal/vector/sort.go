package vector

// ORDER BY for the vectorized engine, in two composable operators:
//
//   - SortRun is the per-worker fragment tail: it drains its child (the
//     morsels this worker claimed, post-filter), materializes the
//     qualifying rows, and emits them as ONE sorted run. Workers sort
//     disjoint cache-resident-ish slices in parallel — the expensive
//     O(n log n) comparisons parallelize, and each run is produced with
//     zero coordination.
//
//   - MergeRuns sits on the consumer side of the Exchange: it collects
//     the workers' runs and k-way merges them through a binary heap,
//     emitting vector-sized batches. k equals the worker count, so the
//     merge is a cheap sequential pass.
//
// Total order is DETERMINISTIC and matches the MAL interpreter's sort
// exactly: ties break on a global row id (the trailing column a
// RowIDs-enabled MorselScan emits), so ascending order equals a stable
// sort by key over the original row order, and descending order is its
// exact reverse — the same contract batalg.Sort/SortDesc implement. Nil
// keys (bat.NilInt for ints, NaN for floats) sort FIRST ascending and
// therefore last descending.
//
// LIMIT pushes down twice: each run truncates to the first Limit rows
// (no worker ships more than the query can return), and the merge stops
// once Limit rows have been emitted.

import (
	"repro/internal/bat"

	"fmt"
	"sort"
)

// SortRun drains Child and emits its rows as one sorted batch (a "run").
// Key and RowID index Child's output columns; RowID is the global-row-id
// tiebreak column (use Exchange.RowIDs to produce it) and may be -1 for
// an unstable run. Limit >= 0 truncates the run.
type SortRun struct {
	Child Operator
	Key   int
	RowID int // tiebreak column; -1 = none
	Desc  bool
	Limit int // -1 = unlimited

	out  Batch
	done bool
}

// Open implements Operator.
func (s *SortRun) Open() error {
	s.done = false
	return s.Child.Open()
}

// Next implements Operator: the single sorted run, then end of stream.
func (s *SortRun) Next() (*Batch, error) {
	if s.done {
		return nil, nil
	}
	s.done = true

	// Materialize the qualifying rows column-wise (selection vectors
	// applied — a sort output has no use for them).
	var cols []Col
	n := 0
	for {
		b, err := s.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if cols == nil {
			cols = make([]Col, len(b.Cols))
			for i := range b.Cols {
				cols[i].Kind = b.Cols[i].Kind
			}
		}
		// The kind dispatch is hoisted out of the per-row loop: one typed
		// copy loop per column, as in the primitives.
		for i := range b.Cols {
			c := &b.Cols[i]
			oc := &cols[i]
			switch c.Kind {
			case KindInt:
				if b.Sel == nil {
					oc.Ints = append(oc.Ints, c.Ints...)
				} else {
					for _, r := range b.Sel {
						oc.Ints = append(oc.Ints, c.Ints[r])
					}
				}
			case KindFloat:
				if b.Sel == nil {
					oc.Floats = append(oc.Floats, c.Floats...)
				} else {
					for _, r := range b.Sel {
						oc.Floats = append(oc.Floats, c.Floats[r])
					}
				}
			case KindBool:
				if b.Sel == nil {
					oc.Bools = append(oc.Bools, c.Bools...)
				} else {
					for _, r := range b.Sel {
						oc.Bools = append(oc.Bools, c.Bools[r])
					}
				}
			}
		}
		n += b.Rows()
	}
	if n == 0 {
		return nil, nil
	}

	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	less, err := rowLess(cols, s.Key, s.RowID, s.Desc)
	if err != nil {
		return nil, err
	}
	sort.Slice(perm, func(i, j int) bool { return less(perm[i], perm[j]) })
	if s.Limit >= 0 && s.Limit < n {
		// Rows past the limit cannot survive the merge: every run
		// contributes at most Limit rows to the first Limit of the total.
		perm = perm[:s.Limit]
		n = s.Limit
	}

	out := make([]Col, len(cols))
	for i := range cols {
		c := &cols[i]
		out[i] = Col{Kind: c.Kind}
		switch c.Kind {
		case KindInt:
			g := make([]int64, n)
			for k, p := range perm {
				g[k] = c.Ints[p]
			}
			out[i].Ints = g
		case KindFloat:
			g := make([]float64, n)
			for k, p := range perm {
				g[k] = c.Floats[p]
			}
			out[i].Floats = g
		case KindBool:
			g := make([]bool, n)
			for k, p := range perm {
				g[k] = c.Bools[p]
			}
			out[i].Bools = g
		}
	}
	s.out = Batch{N: n, Cols: out}
	return &s.out, nil
}

// Close implements Operator.
func (s *SortRun) Close() error { return s.Child.Close() }

// rowLess builds the (key, rowid) comparator over a column set. The
// descending order is the exact REVERSE of the ascending one (key
// descending, tiebreak descending) — reproducing batalg.SortDesc, which
// reverses a stable ascending sort.
func rowLess(cols []Col, key, rowID int, desc bool) (func(a, b int32) bool, error) {
	var cmp func(a, b int32) int
	switch cols[key].Kind {
	case KindInt:
		k := cols[key].Ints
		cmp = func(a, b int32) int {
			x, y := k[a], k[b]
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
	case KindFloat:
		k := cols[key].Floats
		// NaN is the float nil: order it below every real value (matching
		// int tails, where the nil sentinel is the domain minimum).
		cmp = func(a, b int32) int {
			x, y := k[a], k[b]
			if bat.IsNilFloat(x) {
				if bat.IsNilFloat(y) {
					return 0
				}
				return -1
			}
			if bat.IsNilFloat(y) {
				return 1
			}
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
	default:
		return nil, fmt.Errorf("vector: sort key column %d has unsortable kind", key)
	}
	var tie []int64
	if rowID >= 0 {
		tie = cols[rowID].Ints
	}
	if desc {
		return func(a, b int32) bool {
			c := cmp(a, b)
			if c != 0 {
				return c > 0
			}
			return tie != nil && tie[a] > tie[b]
		}, nil
	}
	return func(a, b int32) bool {
		c := cmp(a, b)
		if c != 0 {
			return c < 0
		}
		return tie != nil && tie[a] < tie[b]
	}, nil
}

// MergeRuns k-way merges the sorted runs its child produces (one batch
// per run, typically an Exchange over SortRun fragments) into globally
// ordered vector-sized batches. Key/RowID/Desc must match the runs'
// sort order; Limit >= 0 stops the merge after that many rows.
type MergeRuns struct {
	Child Operator
	Key   int
	RowID int
	Desc  bool
	Limit int // -1 = unlimited
	Size  int // output vector size (DefaultSize if <= 0)

	runs    []*Batch
	heap    []runCursor
	less    func(a, b runCursor) bool
	emitted int
	started bool
	out     Batch
}

// runCursor points at the next unconsumed row of one run.
type runCursor struct {
	run int32
	pos int32
}

// Open implements Operator.
func (m *MergeRuns) Open() error {
	m.runs, m.heap, m.less = nil, nil, nil
	m.emitted = 0
	m.started = false
	if m.Size <= 0 {
		m.Size = DefaultSize
	}
	return m.Child.Open()
}

// start drains the child, collecting runs and seeding the heap.
func (m *MergeRuns) start() error {
	m.started = true
	for {
		b, err := m.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.Rows() == 0 {
			continue
		}
		if b.Sel != nil {
			return fmt.Errorf("vector: merge input runs must be compacted")
		}
		m.runs = append(m.runs, b)
	}
	if len(m.runs) == 0 {
		return nil
	}
	if k := m.runs[0].Cols[m.Key].Kind; k != KindInt && k != KindFloat {
		return fmt.Errorf("vector: sort key column %d has unsortable kind", m.Key)
	}
	// Rows live in different runs, so the comparator gathers through the
	// (run, pos) cursors.
	m.less = func(a, b runCursor) bool {
		return mergeLess(m.runs[a.run].Cols, m.runs[b.run].Cols, a.pos, b.pos, m.Key, m.RowID, m.Desc)
	}
	for ri := range m.runs {
		m.push(runCursor{run: int32(ri), pos: 0})
	}
	return nil
}

// mergeLess compares row ap of column set ac against row bp of bc.
func mergeLess(ac, bc []Col, ap, bp int32, key, rowID int, desc bool) bool {
	var c int
	switch ac[key].Kind {
	case KindInt:
		x, y := ac[key].Ints[ap], bc[key].Ints[bp]
		switch {
		case x < y:
			c = -1
		case x > y:
			c = 1
		}
	default: // KindFloat, validated at run production
		x, y := ac[key].Floats[ap], bc[key].Floats[bp]
		switch {
		case bat.IsNilFloat(x) && bat.IsNilFloat(y):
			c = 0
		case bat.IsNilFloat(x):
			c = -1
		case bat.IsNilFloat(y):
			c = 1
		case x < y:
			c = -1
		case x > y:
			c = 1
		}
	}
	if desc {
		if c != 0 {
			return c > 0
		}
		return rowID >= 0 && ac[rowID].Ints[ap] > bc[rowID].Ints[bp]
	}
	if c != 0 {
		return c < 0
	}
	return rowID >= 0 && ac[rowID].Ints[ap] < bc[rowID].Ints[bp]
}

func (m *MergeRuns) push(c runCursor) {
	m.heap = append(m.heap, c)
	i := len(m.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !m.less(m.heap[i], m.heap[p]) {
			break
		}
		m.heap[i], m.heap[p] = m.heap[p], m.heap[i]
		i = p
	}
}

func (m *MergeRuns) pop() runCursor {
	top := m.heap[0]
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap = m.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(m.heap) && m.less(m.heap[l], m.heap[small]) {
			small = l
		}
		if r < len(m.heap) && m.less(m.heap[r], m.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		m.heap[i], m.heap[small] = m.heap[small], m.heap[i]
		i = small
	}
	return top
}

// Next implements Operator: the next vector-sized slice of the merged
// order.
func (m *MergeRuns) Next() (*Batch, error) {
	if !m.started {
		if err := m.start(); err != nil {
			return nil, err
		}
	}
	if len(m.heap) == 0 {
		return nil, nil
	}
	want := m.Size
	if m.Limit >= 0 {
		if left := m.Limit - m.emitted; left < want {
			want = left
		}
	}
	if want <= 0 {
		m.heap = m.heap[:0]
		return nil, nil
	}

	tmpl := m.runs[0].Cols
	cols := make([]Col, len(tmpl))
	for i := range tmpl {
		cols[i] = Col{Kind: tmpl[i].Kind}
	}
	n := 0
	for n < want && len(m.heap) > 0 {
		cur := m.pop()
		rb := m.runs[cur.run]
		for ci := range rb.Cols {
			c := &rb.Cols[ci]
			oc := &cols[ci]
			switch c.Kind {
			case KindInt:
				oc.Ints = append(oc.Ints, c.Ints[cur.pos])
			case KindFloat:
				oc.Floats = append(oc.Floats, c.Floats[cur.pos])
			case KindBool:
				oc.Bools = append(oc.Bools, c.Bools[cur.pos])
			}
		}
		n++
		if int(cur.pos)+1 < rb.N {
			m.push(runCursor{run: cur.run, pos: cur.pos + 1})
		}
	}
	m.emitted += n
	m.out = Batch{N: n, Cols: cols}
	return &m.out, nil
}

// Close implements Operator.
func (m *MergeRuns) Close() error { return m.Child.Close() }
