package vector

// Parallel grouped aggregation. Two plans, picked by the radix cost
// model (radix.ShouldPartitionGroup):
//
//   - Merge-based (ParallelGroupAgg): every Exchange worker builds its
//     own open-addressing grouping table over the morsels it claims and
//     emits ONE batch of (key, partial...) rows; a final Agg over the
//     Exchange unifies worker-local group ids by re-grouping on the key
//     column and re-aggregates the partials (sum of sums, min of mins —
//     MergeKind gives the fold). Wins while the grouping table stays
//     cache-resident: the merge costs workers×groups inserts, trivial
//     against n.
//
//   - Shared-nothing partitioned (PartitionedGroupAgg): the (position,
//     key) pairs are radix-clustered on the low hash bits first
//     (radix.ParallelCluster — every pass parallel), then each worker
//     owns whole clusters = disjoint key ranges, griding through a
//     cache-resident per-cluster table; the "merge" is concatenation.
//     Wins at high cardinality, where per-worker tables would each be
//     LLC-sized and the merge another full-table build.
//
// Group output order is NOT deterministic across runs (merge order
// follows worker scheduling; partitioned order follows the key hash) —
// SQL grouped output is unordered, and callers needing order sort.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bat"
	"repro/internal/memgov"
	"repro/internal/radix"
)

// MergeKind maps a partial-aggregate kind to the kind that folds its
// per-worker partials into totals: sums and counts add, min/max re-fold
// nil-aware (a worker whose groups saw only nils emits the nil
// sentinel, which the merge fold skips like any other nil input).
func MergeKind(k AggKind) AggKind {
	switch k {
	case AggSumInt, AggSumIntNil, AggCount, AggCountNNInt, AggCountNNFloat:
		return AggSumInt
	case AggSumFloat, AggSumFloatNil:
		return AggSumFloat
	case AggMinInt:
		return AggMinInt
	case AggMaxInt:
		return AggMaxInt
	case AggMinFloat:
		return AggMinFloat
	case AggMaxFloat:
		return AggMaxFloat
	}
	return k
}

// ParallelGroupAgg is the merge-based plan: per-worker grouped partial
// aggregation over morsels, merged by key into one batch with columns
// [keys..., aggs...]. keyCols may name one or two int key columns
// (multi-column GROUP BY rides the composite-key PairGroupTable). preds
// (optional) filter before grouping; ctx (optional) cancels at morsel
// boundaries.
func ParallelGroupAgg(ctx context.Context, src *Source, keyCols []int, specs []AggSpec, preds []Pred, workers, morselSize, vectorSize int) (*Batch, error) {
	return ParallelGroupAggGov(ctx, src, keyCols, specs, preds, workers, morselSize, vectorSize, nil)
}

// ParallelGroupAggGov is ParallelGroupAgg with every worker's grouping
// table — and the final merge's — charged against res. The shared
// ledger is what triggers mid-query re-planning: a worker whose table
// outgrows the query's grant surfaces memgov.ErrExceeded through the
// Exchange, each worker Agg hands its charge back on Close, and the
// physical layer re-plans to grace-hash partitioning.
func ParallelGroupAggGov(ctx context.Context, src *Source, keyCols []int, specs []AggSpec, preds []Pred, workers, morselSize, vectorSize int, res *memgov.Reservation) (*Batch, error) {
	wrap := func(scan Operator) Operator {
		if len(preds) > 0 {
			return &Filter{Child: scan, Preds: preds}
		}
		return scan
	}
	return GroupAggOverPlan(ctx, src, wrap, keyCols, specs, workers, morselSize, vectorSize, res)
}

// GroupAggOverPlan is the merge-based grouped aggregation over an
// ARBITRARY per-worker pipeline: wrap builds each worker's operator
// chain over its morsel scan (filters, hash-join probes, expression
// projections — whatever feeds the grouping), this function appends the
// per-worker partial Agg and runs the key-merge. keyCols/specs index
// the columns of wrap's OUTPUT batches. This is how grouped aggregation
// composes over N-way join pipelines without re-materializing the join
// result.
func GroupAggOverPlan(ctx context.Context, src *Source, wrap func(Operator) Operator, keyCols []int, specs []AggSpec, workers, morselSize, vectorSize int, res *memgov.Reservation) (*Batch, error) {
	plan := func(scan Operator) Operator {
		return &Agg{Child: wrap(scan), KeyCol: -1, Keys: keyCols, Aggs: specs, Res: res}
	}
	ex := &Exchange{
		Source:     src,
		Workers:    workers,
		MorselSize: morselSize,
		VectorSize: vectorSize,
		Plan:       plan,
		Ctx:        ctx,
	}
	// Worker batches lead with the key column(s), so partial column i
	// sits at i+len(keyCols); the merge re-groups on those leading keys.
	nk := len(keyCols)
	mergeKeys := make([]int, nk)
	for i := range mergeKeys {
		mergeKeys[i] = i
	}
	merge := make([]AggSpec, len(specs))
	for i, s := range specs {
		merge[i] = AggSpec{Kind: MergeKind(s.Kind), Col: i + nk}
	}
	final := &Agg{Child: ex, KeyCol: -1, Keys: mergeKeys, Aggs: merge, Res: res}
	if err := final.Open(); err != nil {
		return nil, err
	}
	defer final.Close()
	out, err := final.Next()
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("vector: grouped merge produced no batch")
	}
	return out, nil
}

// PartitionedGroupAgg is the shared-nothing plan: radix-cluster
// (position, key) pairs so workers own disjoint key ranges, aggregate
// each cluster with a cache-resident table, concatenate. The input must
// be unfiltered (the caller falls back to the merge plan under
// predicates); ctx is observed throughout — during the shuffle
// (ParallelClusterCtx checks between passes and clusters) and between
// aggregation clusters — so cancellation latency stays bounded by one
// pass/cluster of work, not the whole plan.
func PartitionedGroupAgg(ctx context.Context, src *Source, keyCol int, specs []AggSpec, workers, bits int) (*Batch, error) {
	return PartitionedGroupAggGov(ctx, src, keyCol, specs, workers, bits, nil)
}

// PartitionedGroupAggGov is PartitionedGroupAgg charging the tuple
// shuffle — its dominant allocation: the (position, key) array plus
// the clustered copy, 16 bytes per row each — against res up front.
// The per-cluster tables stay cache-resident by construction and are
// not charged. The whole charge is released on return: the shuffle
// dies with this call.
func PartitionedGroupAggGov(ctx context.Context, src *Source, keyCol int, specs []AggSpec, workers, bits int, res *memgov.Reservation) (*Batch, error) {
	keys := src.Cols[keyCol].Ints
	n := len(keys)
	if res != nil {
		charge := int64(n) * 32
		if err := res.Acquire(charge); err != nil {
			return nil, err
		}
		defer res.Release(charge)
	}
	tuples := make([]radix.Tuple, n)
	for i, k := range keys {
		tuples[i] = radix.Tuple{OID: bat.OID(i), Val: k}
	}
	c, err := radix.ParallelClusterCtx(ctx, tuples, radix.SplitBits(bits, 2), workers)
	if err != nil {
		return nil, err
	}

	nclusters := c.NumClusters()
	parts := make([]*Batch, nclusters)
	errs := make([]error, nclusters)
	next := make(chan int)
	done := make(chan struct{})
	if workers <= 0 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		go func() {
			for ci := range next {
				parts[ci], errs[ci] = groupOneCluster(src, c.ClusterSlice(ci), specs)
			}
			done <- struct{}{}
		}()
	}
	var ctxErr error
feed:
	for ci := 0; ci < nclusters; ci++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				break feed
			}
		}
		next <- ci
	}
	close(next)
	for w := 0; w < workers; w++ {
		<-done
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Concatenate: clusters hold disjoint key sets, so group ids are
	// just offsets into the combined output.
	total := 0
	for _, p := range parts {
		if p != nil {
			total += p.N
		}
	}
	cols := make([]Col, len(specs)+1)
	cols[0] = Col{Kind: KindInt, Ints: make([]int64, 0, total)}
	for i, s := range specs {
		if s.Kind.Float() {
			cols[i+1] = Col{Kind: KindFloat, Floats: make([]float64, 0, total)}
		} else {
			cols[i+1] = Col{Kind: KindInt, Ints: make([]int64, 0, total)}
		}
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for i := range cols {
			if cols[i].Kind == KindFloat {
				cols[i].Floats = append(cols[i].Floats, p.Cols[i].Floats...)
			} else {
				cols[i].Ints = append(cols[i].Ints, p.Cols[i].Ints...)
			}
		}
	}
	return &Batch{N: total, Cols: cols}, nil
}

// groupOneCluster aggregates one cluster's tuples: local group ids from
// the open-addressing table, value gathers through the shuffled
// positions. Returns a batch [key, aggs...] or nil for an empty cluster.
func groupOneCluster(src *Source, cl []radix.Tuple, specs []AggSpec) (*Batch, error) {
	if len(cl) == 0 {
		return nil, nil
	}
	gt := radix.NewGroupTable(256)
	gids := make([]int32, len(cl))
	for i := range cl {
		gids[i] = gt.GID(cl[i].Val)
	}
	ng := int32(gt.Len())
	cols := make([]Col, len(specs)+1)
	cols[0] = Col{Kind: KindInt, Ints: gt.Keys()}
	for ai, spec := range specs {
		var ints []int64
		var flts []float64
		switch spec.Kind {
		case AggCount:
			ints = growInts(nil, ng, 0)
			for _, g := range gids {
				ints[g]++
			}
		case AggSumInt, AggSumIntNil, AggCountNNInt, AggMinInt, AggMaxInt:
			col := src.Cols[spec.Col].Ints
			ints = growInts(nil, ng, spec.Kind.initInt())
			for i := range cl {
				v := col[cl[i].OID]
				g := gids[i]
				switch spec.Kind {
				case AggSumInt:
					ints[g] += v
				case AggSumIntNil:
					if v != bat.NilInt {
						ints[g] += v
					}
				case AggCountNNInt:
					if v != bat.NilInt {
						ints[g]++
					}
				case AggMinInt:
					if v != bat.NilInt && (ints[g] == bat.NilInt || v < ints[g]) {
						ints[g] = v
					}
				case AggMaxInt:
					if v != bat.NilInt && (ints[g] == bat.NilInt || v > ints[g]) {
						ints[g] = v
					}
				}
			}
		case AggSumFloat, AggSumFloatNil, AggCountNNFloat, AggMinFloat, AggMaxFloat:
			col := src.Cols[spec.Col].Floats
			if spec.Kind == AggCountNNFloat {
				ints = growInts(nil, ng, 0)
			} else {
				flts = growFloats(nil, ng, spec.Kind.initFloat())
			}
			for i := range cl {
				v := col[cl[i].OID]
				g := gids[i]
				switch spec.Kind {
				case AggSumFloat:
					flts[g] += v
				case AggSumFloatNil:
					if !bat.IsNilFloat(v) {
						flts[g] += v
					}
				case AggCountNNFloat:
					if !bat.IsNilFloat(v) {
						ints[g]++
					}
				case AggMinFloat:
					if !bat.IsNilFloat(v) && (bat.IsNilFloat(flts[g]) || v < flts[g]) {
						flts[g] = v
					}
				case AggMaxFloat:
					if !bat.IsNilFloat(v) && (bat.IsNilFloat(flts[g]) || v > flts[g]) {
						flts[g] = v
					}
				}
			}
		default:
			return nil, fmt.Errorf("vector: bad aggregate kind %d", spec.Kind)
		}
		if flts != nil {
			cols[ai+1] = Col{Kind: KindFloat, Floats: flts}
		} else {
			cols[ai+1] = Col{Kind: KindInt, Ints: ints}
		}
	}
	return &Batch{N: gt.Len(), Cols: cols}, nil
}

// EstimateGroups guesses the distinct-key count of keys from a sample
// of at most 4096 values spread across the whole column: d distinct
// among s sampled. For G uniform groups the expected sample
// distinctness is E[d] = G·(1-e^(-s/G)) — the Poisson/coupon-collector
// curve — so the estimate inverts it as G ≈ -s·ln(1-d/s), which is
// exact at G=s and within a small factor across the band (a naive
// linear d·n/s extrapolation overestimates that band by orders of
// magnitude once the sample is half distinct). A fully-distinct sample
// says only "at least ~n-ish": return n. The plan choice this feeds
// needs the order of magnitude — cache-resident vs LLC-spilling
// grouping table — not precision.
func EstimateGroups(keys []int64) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	s := n
	if s > 4096 {
		s = 4096
	}
	gt := radix.NewGroupTable(s)
	// Sample positions i*n/s so coverage spans the WHOLE column even
	// when n is not a multiple of s — an integer stride would degrade
	// to a prefix scan and misjudge data clustered by key.
	for i := 0; i < s; i++ {
		gt.GID(keys[i*n/s])
	}
	d := gt.Len()
	if d >= s {
		return n
	}
	est := int(-float64(s) * math.Log(1-float64(d)/float64(s)))
	if est < d {
		est = d
	}
	if est > n {
		est = n
	}
	return est
}
