package vector

// The vector operators spill through these small interfaces rather
// than importing the spill package directly: spill imports vector (it
// encodes Batches), so the dependency must point downward. The
// physical planner bridges a query's spill.Scope into a SpillSink and
// threads it — together with the query's memgov.Reservation — into the
// operators that can exceed their grant (SortRun, Agg, join builds).

import "sync"

// SpillWriter receives the chunks of ONE spilled run or partition.
// Implementations must apply the batch's selection vector (writes are
// dense) and must leave the underlying file closed after any error.
type SpillWriter interface {
	WriteBatch(b *Batch) error
	// Finish seals the file (sync + close) and returns the readable run.
	Finish() (SpillRun, error)
}

// SpillRun is a sealed spill file, openable for streaming re-reads.
type SpillRun interface {
	Open() (SpillReader, error)
}

// SpillReader streams a run's batches back in write order. The batch
// returned by Next is valid until the following Next call; Next
// returns (nil, nil) at end of run.
type SpillReader interface {
	Next() (*Batch, error)
	Close() error
}

// SpillSink opens a new spill file under the owning query's scope. A
// nil sink means spilling is unavailable and over-grant operators must
// fail instead.
type SpillSink func(label string) (SpillWriter, error)

// RunSet collects the spilled runs of one sort across its parallel
// workers: each SortRun registers the runs it spilled, and MergeRuns
// takes them all once the Exchange barrier guarantees every worker is
// done. Safe for concurrent Add.
type RunSet struct {
	mu   sync.Mutex
	runs []SpillRun
}

// Add registers one sealed run.
func (rs *RunSet) Add(r SpillRun) {
	rs.mu.Lock()
	rs.runs = append(rs.runs, r)
	rs.mu.Unlock()
}

// Take returns every registered run and empties the set.
func (rs *RunSet) Take() []SpillRun {
	rs.mu.Lock()
	runs := rs.runs
	rs.runs = nil
	rs.mu.Unlock()
	return runs
}

// batchBytes estimates the buffered footprint of b's qualifying rows —
// what a materializing operator charges its reservation before copying
// them in.
func batchBytes(b *Batch) int64 {
	rows := int64(b.Rows())
	var width int64
	for i := range b.Cols {
		if b.Cols[i].Kind == KindBool {
			width++
		} else {
			width += 8
		}
	}
	return rows * width
}
