package vector

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bat"
)

// sortedPipeline builds the full ORDER BY plan the physical layer
// instantiates: RowIDs exchange over filter+SortRun fragments, merged
// by MergeRuns. Returns the merged rows as (key, payload) pairs.
func sortedPipeline(t *testing.T, keys []int64, desc bool, limit, workers int) [][2]int64 {
	t.Helper()
	payload := make([]int64, len(keys))
	for i := range payload {
		payload[i] = int64(i) * 7
	}
	src, err := NewSource([]string{"k", "p"}, []Col{
		{Kind: KindInt, Ints: keys},
		{Kind: KindInt, Ints: payload},
	})
	if err != nil {
		t.Fatal(err)
	}
	rowID := 2 // appended by the RowIDs scan
	ex := &Exchange{
		Source:     src,
		Workers:    workers,
		MorselSize: 16,
		VectorSize: 8,
		RowIDs:     true,
		Plan: func(scan Operator) Operator {
			return &SortRun{Child: scan, Key: 0, RowID: rowID, Desc: desc, Limit: limit}
		},
	}
	merge := &MergeRuns{Child: ex, Key: 0, RowID: rowID, Desc: desc, Limit: limit, Size: 8}
	rows, err := Drain(merge)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][2]int64, len(rows))
	for i, r := range rows {
		out[i] = [2]int64{r[0].(int64), r[1].(int64)}
	}
	return out
}

// serialOrder is the oracle: a stable ascending sort by key over the
// original row order; descending is its exact reverse (the batalg
// Sort/SortDesc contract).
func serialOrder(keys []int64, desc bool, limit int) [][2]int64 {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	if desc {
		for a, b := 0, len(idx)-1; a < b; a, b = a+1, b-1 {
			idx[a], idx[b] = idx[b], idx[a]
		}
	}
	if limit >= 0 && limit < len(idx) {
		idx = idx[:limit]
	}
	out := make([][2]int64, len(idx))
	for i, r := range idx {
		out[i] = [2]int64{keys[r], int64(r) * 7}
	}
	return out
}

func TestSortRunMergeVsSerialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 5, 100, 500} {
		for _, desc := range []bool{false, true} {
			for _, limit := range []int{-1, 0, 3, 250} {
				for _, workers := range []int{1, 2, 4, 8} {
					keys := make([]int64, n)
					for i := range keys {
						keys[i] = rng.Int63n(17) // heavy duplication
						if rng.Intn(6) == 0 {
							keys[i] = bat.NilInt
						}
					}
					got := sortedPipeline(t, keys, desc, limit, workers)
					want := serialOrder(keys, desc, limit)
					if len(got) != len(want) {
						t.Fatalf("n=%d desc=%v limit=%d w=%d: %d rows, want %d",
							n, desc, limit, workers, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("n=%d desc=%v limit=%d w=%d row %d: got %v want %v",
								n, desc, limit, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// Float keys: NaN (the float nil) orders first ascending, last
// descending — exactly like nil ints.
func TestSortFloatNaNOrder(t *testing.T) {
	keys := []float64{2.5, math.NaN(), 1.5, math.NaN(), 3.5}
	src, err := NewSource([]string{"k"}, []Col{{Kind: KindFloat, Floats: keys}})
	if err != nil {
		t.Fatal(err)
	}
	for _, desc := range []bool{false, true} {
		ex := &Exchange{
			Source: src, Workers: 2, MorselSize: 2, VectorSize: 2, RowIDs: true,
			Plan: func(scan Operator) Operator {
				return &SortRun{Child: scan, Key: 0, RowID: 1, Desc: desc, Limit: -1}
			},
		}
		merge := &MergeRuns{Child: ex, Key: 0, RowID: 1, Desc: desc, Limit: -1, Size: 4}
		rows, err := Drain(merge)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("desc=%v: %d rows", desc, len(rows))
		}
		vals := make([]float64, 5)
		for i, r := range rows {
			vals[i] = r[0].(float64)
		}
		nanAt := []int{0, 1}
		realAsc := []float64{1.5, 2.5, 3.5}
		realFrom := 2
		if desc {
			nanAt = []int{3, 4}
			realAsc = []float64{3.5, 2.5, 1.5}
			realFrom = 0
		}
		for _, i := range nanAt {
			if !math.IsNaN(vals[i]) {
				t.Fatalf("desc=%v: expected NaN at %d, got %v", desc, i, vals)
			}
		}
		for i, want := range realAsc {
			if vals[realFrom+i] != want {
				t.Fatalf("desc=%v: got %v", desc, vals)
			}
		}
	}
}

// The run-level LIMIT pushdown truncates each worker's run: with limit
// k, no run the merge sees is longer than k.
func TestSortRunLimitPushdown(t *testing.T) {
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(1000 - i)
	}
	src, err := NewSource([]string{"k"}, []Col{{Kind: KindInt, Ints: keys}})
	if err != nil {
		t.Fatal(err)
	}
	ex := &Exchange{
		Source: src, Workers: 4, MorselSize: 64, VectorSize: 32, RowIDs: true,
		Plan: func(scan Operator) Operator {
			return &SortRun{Child: scan, Key: 0, RowID: 1, Desc: false, Limit: 5}
		},
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	runs := 0
	for {
		b, err := ex.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		runs++
		if b.Rows() > 5 {
			t.Fatalf("run of %d rows escaped the limit pushdown", b.Rows())
		}
	}
	if runs == 0 {
		t.Fatal("no runs produced")
	}
}
