package vector

// Regression test: an empty selection produced while scratch buffers were
// still nil used to reach the next predicate as nil ("all rows qualify"),
// silently un-filtering small-vector runs.

import (
	"math/rand"
	"testing"
)

func TestQ6SizeInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 10000
	qty := make([]int64, n)
	price := make([]float64, n)
	disc := make([]float64, n)
	for i := 0; i < n; i++ {
		qty[i] = 1 + r.Int63n(50)
		price[i] = 900 + 100*float64(r.Intn(1000))/10
		disc[i] = float64(r.Intn(11)) / 100
	}
	var want float64
	for i := 0; i < n; i++ {
		if qty[i] < 24 && disc[i] >= 0.05 && disc[i] <= 0.07 {
			want += price[i] * (1 - disc[i])
		}
	}
	for _, size := range []int{1, 2, 7, 1024, n} {
		src, _ := NewSource([]string{"q", "p", "d"}, []Col{
			{Kind: KindInt, Ints: qty}, {Kind: KindFloat, Floats: price}, {Kind: KindFloat, Floats: disc}})
		plan := &Agg{
			Child: &Project{
				Child: &Filter{Child: NewScan(src, size), Preds: []Pred{
					{ColIdx: 0, Op: PredLt, IntVal: 24},
					{ColIdx: 2, Op: PredGeF, FltVal: 0.05},
					{ColIdx: 2, Op: PredLeF, FltVal: 0.07}}},
				Exprs: []Expr{Bin{Op: EMulFloat, L: ColRef{1}, R: Bin{Op: ESubConstFloat, FltConst: 1, L: ColRef{2}}}},
			},
			KeyCol: -1, Aggs: []AggSpec{{Kind: AggSumFloat, Col: 0}}}
		rows, err := Drain(plan)
		if err != nil {
			t.Fatal(err)
		}
		got := rows[0][0].(float64)
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("size %d: got %.2f want %.2f", size, got, want)
		}
	}
}

// TestQ6MorselSizeInvariance runs the morsel-parallel Q6 plan across
// morsel sizes (including sizes that don't divide n, and one smaller
// than the vector size) and checks the sum against the serial oracle.
func TestQ6MorselSizeInvariance(t *testing.T) {
	n := 20000
	src, want := q6Source(t, n, 43)
	for _, morsel := range []int{100, 1023, 4096, n, 2 * n} {
		got, err := ParallelQ6(src, 4, morsel)
		if err != nil {
			t.Fatal(err)
		}
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("morsel %d: got %.2f want %.2f", morsel, got, want)
		}
	}
}

func TestEmptySelectionStaysEmpty(t *testing.T) {
	// First batch fails the first predicate entirely; the second predicate
	// must see an empty (not nil) selection.
	src, _ := NewSource([]string{"q", "d"}, []Col{
		{Kind: KindInt, Ints: []int64{99, 99}},
		{Kind: KindFloat, Floats: []float64{0.06, 0.06}},
	})
	plan := &Agg{
		Child: &Filter{Child: NewScan(src, 1), Preds: []Pred{
			{ColIdx: 0, Op: PredLt, IntVal: 24},
			{ColIdx: 1, Op: PredGeF, FltVal: 0.05},
		}},
		KeyCol: -1, Aggs: []AggSpec{{Kind: AggCount}},
	}
	rows, err := Drain(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != int64(0) {
		t.Fatalf("rows = %v, want one zero-count row", rows)
	}
}
