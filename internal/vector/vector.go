// Package vector implements an X100-style vectorized execution engine
// (paper §5): pull-based relational operators exchanging small slices of
// columns ("vectors") instead of single tuples or whole columns. The
// engine keeps MonetDB's zero-degree-of-freedom columnar primitives but
// embeds them in a pipelined model, separating columnar data flow from
// pipelined control flow.
//
// The vector size is the central tuning knob: with size 1 the engine
// degenerates to tuple-at-a-time performance, with sizes in the hundreds
// the per-tuple interpretation overhead amortizes away while the working
// set still fits the CPU cache (experiment E6 sweeps this).
package vector

import (
	"fmt"
)

// DefaultSize is the default vector length: in the paper's sweet spot
// (100..1000).
const DefaultSize = 1024

// Kind is a column type tag.
type Kind uint8

// Column kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindBool
)

// Col is one column vector.
type Col struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Bools  []bool
}

// Len returns the vector length.
func (c *Col) Len() int {
	switch c.Kind {
	case KindInt:
		return len(c.Ints)
	case KindFloat:
		return len(c.Floats)
	case KindBool:
		return len(c.Bools)
	}
	return 0
}

// Batch is the unit of data flow: n rows across len(Cols) columns, with an
// optional selection vector. If Sel is non-nil, only the row indexes it
// lists qualify; columns still hold all n positions (selection vectors
// avoid copying, as in X100).
type Batch struct {
	N    int
	Sel  []int32 // nil = all rows 0..N-1 qualify
	Cols []Col
}

// Rows returns the number of qualifying rows.
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// ForEach calls f for every qualifying row index.
func (b *Batch) ForEach(f func(i int32)) {
	if b.Sel != nil {
		for _, i := range b.Sel {
			f(i)
		}
		return
	}
	for i := int32(0); i < int32(b.N); i++ {
		f(i)
	}
}

// Operator is the pull-based X100 operator interface. Next returns nil at
// end of stream. Returned batches are valid until the next call.
type Operator interface {
	Open() error
	Next() (*Batch, error)
	Close() error
}

// --- scan ---

// Source is an in-memory columnar table the scan reads from.
type Source struct {
	Names []string
	Cols  []Col
	n     int
}

// NewSource builds a source from named columns, validating equal lengths.
func NewSource(names []string, cols []Col) (*Source, error) {
	if len(names) != len(cols) {
		return nil, fmt.Errorf("vector: %d names for %d cols", len(names), len(cols))
	}
	n := -1
	for i := range cols {
		if n == -1 {
			n = cols[i].Len()
		} else if cols[i].Len() != n {
			return nil, fmt.Errorf("vector: column %q length %d != %d", names[i], cols[i].Len(), n)
		}
	}
	if n == -1 {
		n = 0
	}
	return &Source{Names: names, Cols: cols, n: n}, nil
}

// NewSourceWithLen builds a source of exactly n rows; cols may be empty
// (a pure row-count scan, e.g. count(*) touching no columns), otherwise
// every column's length must equal n.
func NewSourceWithLen(names []string, cols []Col, n int) (*Source, error) {
	src, err := NewSource(names, cols)
	if err != nil {
		return nil, err
	}
	if len(cols) > 0 && src.n != n {
		return nil, fmt.Errorf("vector: source length %d != declared %d", src.n, n)
	}
	src.n = n
	return src, nil
}

// Len returns the number of rows in the source.
func (s *Source) Len() int { return s.n }

// Scan produces vectors of at most Size rows from a Source, zero-copy
// (column vectors are sub-slices of the source arrays).
type Scan struct {
	Src  *Source
	Size int
	pos  int
	b    Batch
}

// NewScan returns a scan with the given vector size (DefaultSize if <= 0).
func NewScan(src *Source, size int) *Scan {
	if size <= 0 {
		size = DefaultSize
	}
	return &Scan{Src: src, Size: size}
}

// Open implements Operator.
func (s *Scan) Open() error { s.pos = 0; return nil }

// Next implements Operator.
func (s *Scan) Next() (*Batch, error) {
	if s.pos >= s.Src.n {
		return nil, nil
	}
	hi := s.pos + s.Size
	if hi > s.Src.n {
		hi = s.Src.n
	}
	cols := make([]Col, len(s.Src.Cols))
	for i := range s.Src.Cols {
		c := &s.Src.Cols[i]
		cols[i] = Col{Kind: c.Kind}
		switch c.Kind {
		case KindInt:
			cols[i].Ints = c.Ints[s.pos:hi]
		case KindFloat:
			cols[i].Floats = c.Floats[s.pos:hi]
		case KindBool:
			cols[i].Bools = c.Bools[s.pos:hi]
		}
	}
	s.b = Batch{N: hi - s.pos, Cols: cols}
	s.pos = hi
	return &s.b, nil
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }
