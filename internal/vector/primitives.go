package vector

// Vectorized primitives: each is one tight loop over a vector, optionally
// driven by a selection vector. These are the X100 equivalents of the BAT
// algebra's bulk operators; all per-tuple interpretation decisions are
// hoisted out of these loops.

import (
	"math"

	"repro/internal/bat"
	"repro/internal/radix"
)

// SelGeInt appends to out the indexes i (drawn from sel, or 0..n-1) with
// col[i] >= v, returning the filled slice.
func SelGeInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x >= v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] >= v {
			out = append(out, i)
		}
	}
	return out
}

// SelLtInt appends indexes with col[i] < v.
func SelLtInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x < v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] < v {
			out = append(out, i)
		}
	}
	return out
}

// SelEqInt appends indexes with col[i] == v.
func SelEqInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x == v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] == v {
			out = append(out, i)
		}
	}
	return out
}

// SelLeFloat appends indexes with col[i] <= v.
func SelLeFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x <= v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] <= v {
			out = append(out, i)
		}
	}
	return out
}

// SelGeFloat appends indexes with col[i] >= v.
func SelGeFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x >= v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] >= v {
			out = append(out, i)
		}
	}
	return out
}

// SelLeInt appends indexes with col[i] <= v.
func SelLeInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x <= v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] <= v {
			out = append(out, i)
		}
	}
	return out
}

// SelGtInt appends indexes with col[i] > v.
func SelGtInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x > v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] > v {
			out = append(out, i)
		}
	}
	return out
}

// SelNeInt appends indexes with col[i] != v.
func SelNeInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x != v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] != v {
			out = append(out, i)
		}
	}
	return out
}

// SelLtFloat appends indexes with col[i] < v.
func SelLtFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x < v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] < v {
			out = append(out, i)
		}
	}
	return out
}

// SelGtFloat appends indexes with col[i] > v.
func SelGtFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x > v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] > v {
			out = append(out, i)
		}
	}
	return out
}

// SelEqFloat appends indexes with col[i] == v (never NaN, the float nil).
func SelEqFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x == v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] == v {
			out = append(out, i)
		}
	}
	return out
}

// SelNeFloat appends indexes with col[i] != v, excluding NaN (the float
// nil: NULL <> v is unknown, not true).
func SelNeFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x != v && !bat.IsNilFloat(x) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		x := col[i]
		if x != v && !bat.IsNilFloat(x) {
			out = append(out, i)
		}
	}
	return out
}

// --- nil-aware selections ---
//
// bat.NilInt is the domain MINIMUM, so the plain <, <=, <> loops would
// let stored NULLs qualify. These variants skip the sentinel first; the
// remaining int comparisons (=, >, >=) and all float comparisons are
// already nil-correct (NilInt can only satisfy them when compared
// against the sentinel value itself, mirroring the BAT algebra's
// ThetaSelect; NaN, the float nil, fails every float comparison). The
// physical plan picks the nil-aware variant exactly when the column's
// NoNil property is unset — the same property-driven dispatch §3.1
// describes — so nil-free columns keep the tight three-instruction loop.

// SelLtIntNil appends indexes with col[i] < v, skipping nils.
func SelLtIntNil(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x < v && x != bat.NilInt {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if x := col[i]; x < v && x != bat.NilInt {
			out = append(out, i)
		}
	}
	return out
}

// SelLeIntNil appends indexes with col[i] <= v, skipping nils.
func SelLeIntNil(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x <= v && x != bat.NilInt {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if x := col[i]; x <= v && x != bat.NilInt {
			out = append(out, i)
		}
	}
	return out
}

// SelNeIntNil appends indexes with col[i] != v, skipping nils (NULL <> v
// is unknown, not true).
func SelNeIntNil(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x != v && x != bat.NilInt {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if x := col[i]; x != v && x != bat.NilInt {
			out = append(out, i)
		}
	}
	return out
}

// SelNilInt appends indexes whose int value IS the nil sentinel.
func SelNilInt(col []int64, sel []int32, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x == bat.NilInt {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] == bat.NilInt {
			out = append(out, i)
		}
	}
	return out
}

// SelNotNilInt appends indexes whose int value is NOT nil.
func SelNotNilInt(col []int64, sel []int32, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x != bat.NilInt {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] != bat.NilInt {
			out = append(out, i)
		}
	}
	return out
}

// SelNilFloat appends indexes whose float value is NaN (the float nil).
func SelNilFloat(col []float64, sel []int32, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if bat.IsNilFloat(x) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if x := col[i]; bat.IsNilFloat(x) {
			out = append(out, i)
		}
	}
	return out
}

// SelNotNilFloat appends indexes whose float value is not NaN.
func SelNotNilFloat(col []float64, sel []int32, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if !bat.IsNilFloat(x) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if x := col[i]; !bat.IsNilFloat(x) {
			out = append(out, i)
		}
	}
	return out
}

// MapAddInt computes out[i] = a[i] + b[i] for qualifying i.
func MapAddInt(a, b []int64, sel []int32, out []int64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] + b[i]
	}
}

// MapMulInt computes out[i] = a[i] * b[i].
func MapMulInt(a, b []int64, sel []int32, out []int64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] * b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] * b[i]
	}
}

// MapAddIntConst computes out[i] = a[i] + v.
func MapAddIntConst(a []int64, v int64, sel []int32, out []int64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] + v
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] + v
	}
}

// MapMulFloat computes out[i] = a[i] * b[i].
func MapMulFloat(a, b []float64, sel []int32, out []float64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] * b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] * b[i]
	}
}

// MapSubConstFloat computes out[i] = v - a[i].
func MapSubConstFloat(v float64, a []float64, sel []int32, out []float64) {
	if sel == nil {
		for i := range a {
			out[i] = v - a[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = v - a[i]
	}
}

// MapAddFloat computes out[i] = a[i] + b[i].
func MapAddFloat(a, b []float64, sel []int32, out []float64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] + b[i]
	}
}

// SumInt folds qualifying values of col into a scalar.
func SumInt(col []int64, sel []int32) int64 {
	var s int64
	if sel == nil {
		for _, x := range col {
			s += x
		}
		return s
	}
	for _, i := range sel {
		s += col[i]
	}
	return s
}

// SumFloat folds qualifying values of col into a scalar.
func SumFloat(col []float64, sel []int32) float64 {
	var s float64
	if sel == nil {
		for _, x := range col {
			s += x
		}
		return s
	}
	for _, i := range sel {
		s += col[i]
	}
	return s
}

// CountSel returns the number of qualifying rows.
func CountSel(n int, sel []int32) int64 {
	if sel == nil {
		return int64(n)
	}
	return int64(len(sel))
}

// AssignGroups maps each qualifying key to a dense group id through the
// shared open-addressing GroupTable (no map, no per-key allocations),
// writing ids into gids (full-length, indexed by row) and returning the
// total group count so far. bat.NilInt is a legal key: the NULL group.
func AssignGroups(keys []int64, sel []int32, gt *radix.GroupTable, gids []int32) int32 {
	if sel == nil {
		gt.AssignBulk(keys, gids)
	} else {
		for _, i := range sel {
			gids[i] = gt.GID(keys[i])
		}
	}
	return int32(gt.Len())
}

// PairGrouper assigns dense group ids over COMPOSITE (int64, int64)
// keys through the shared radix.PairGroupTable, tracking the dense
// key-half arrays the table itself does not store (its 24-byte slots
// hold only key+gid). bat.NilInt is a legal key half: SQL multi-column
// GROUP BY groups NULLs together per column ("is not distinct from").
type PairGrouper struct {
	T      *radix.PairGroupTable
	K1, K2 []int64 // dense gid -> key halves, in first-seen order
}

// NewPairGrouper returns a grouper pre-sized for hint distinct pairs.
func NewPairGrouper(hint int) *PairGrouper {
	return &PairGrouper{T: radix.NewPairGroupTable(hint)}
}

// Assign maps each qualifying (k1[i], k2[i]) pair to a dense group id,
// writing ids into gids (full-length, indexed by row) and returning the
// total group count so far.
func (g *PairGrouper) Assign(k1, k2 []int64, sel []int32, gids []int32) int32 {
	one := func(i int32) {
		gid := g.T.GID(k1[i], k2[i])
		if int(gid) == len(g.K1) { // first sight of this pair
			g.K1 = append(g.K1, k1[i])
			g.K2 = append(g.K2, k2[i])
		}
		gids[i] = gid
	}
	if sel == nil {
		for i := range k1 {
			one(int32(i))
		}
	} else {
		for _, i := range sel {
			one(i)
		}
	}
	return int32(g.T.Len())
}

// SumIntPerGroup folds col values into accs[gids[i]] for qualifying rows,
// growing accs to ngroups first. It returns accs.
func SumIntPerGroup(col []int64, sel []int32, gids []int32, accs []int64, ngroups int32) []int64 {
	for int32(len(accs)) < ngroups {
		accs = append(accs, 0)
	}
	if sel == nil {
		for i := range col {
			accs[gids[i]] += col[i]
		}
		return accs
	}
	for _, i := range sel {
		accs[gids[i]] += col[i]
	}
	return accs
}

// SumFloatPerGroup folds float col values per group.
func SumFloatPerGroup(col []float64, sel []int32, gids []int32, accs []float64, ngroups int32) []float64 {
	for int32(len(accs)) < ngroups {
		accs = append(accs, 0)
	}
	if sel == nil {
		for i := range col {
			accs[gids[i]] += col[i]
		}
		return accs
	}
	for _, i := range sel {
		accs[gids[i]] += col[i]
	}
	return accs
}

// CountPerGroup increments counts[gids[i]] for qualifying rows.
func CountPerGroup(sel []int32, n int, gids []int32, counts []int64, ngroups int32) []int64 {
	for int32(len(counts)) < ngroups {
		counts = append(counts, 0)
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			counts[gids[i]]++
		}
		return counts
	}
	for _, i := range sel {
		counts[gids[i]]++
	}
	return counts
}

// --- nil-aware per-group folds ---
//
// The nil sentinels are bat.NilInt for int vectors and NaN for float
// vectors (matching the BAT layer). Sums and counts SKIP nils; min/max
// accumulators START at the sentinel, so a group nothing contributed to
// reads back as nil — exactly SQL's all-NULL-group semantics, and the
// property that makes per-worker partials mergeable: a worker's nil
// partial is skipped by the merge fold like any other nil input.

// growInts pads accs to n entries initialized to init.
func growInts(accs []int64, n int32, init int64) []int64 {
	for int32(len(accs)) < n {
		accs = append(accs, init)
	}
	return accs
}

// growFloats pads accs to n entries initialized to init.
func growFloats(accs []float64, n int32, init float64) []float64 {
	for int32(len(accs)) < n {
		accs = append(accs, init)
	}
	return accs
}

// SumIntNilPerGroup folds col into accs[gids[i]], skipping nil values.
func SumIntNilPerGroup(col []int64, sel []int32, gids []int32, accs []int64, ngroups int32) []int64 {
	accs = growInts(accs, ngroups, 0)
	if sel == nil {
		for i, v := range col {
			if v != bat.NilInt {
				accs[gids[i]] += v
			}
		}
		return accs
	}
	for _, i := range sel {
		if v := col[i]; v != bat.NilInt {
			accs[gids[i]] += v
		}
	}
	return accs
}

// SumFloatNilPerGroup folds col per group, skipping NaN (the float nil).
func SumFloatNilPerGroup(col []float64, sel []int32, gids []int32, accs []float64, ngroups int32) []float64 {
	accs = growFloats(accs, ngroups, 0)
	if sel == nil {
		for i, v := range col {
			if !bat.IsNilFloat(v) {
				accs[gids[i]] += v
			}
		}
		return accs
	}
	for _, i := range sel {
		if v := col[i]; !bat.IsNilFloat(v) {
			accs[gids[i]] += v
		}
	}
	return accs
}

// CountNNIntPerGroup counts non-nil int values per group.
func CountNNIntPerGroup(col []int64, sel []int32, gids []int32, accs []int64, ngroups int32) []int64 {
	accs = growInts(accs, ngroups, 0)
	if sel == nil {
		for i, v := range col {
			if v != bat.NilInt {
				accs[gids[i]]++
			}
		}
		return accs
	}
	for _, i := range sel {
		if col[i] != bat.NilInt {
			accs[gids[i]]++
		}
	}
	return accs
}

// CountNNFloatPerGroup counts non-NaN float values per group.
func CountNNFloatPerGroup(col []float64, sel []int32, gids []int32, accs []int64, ngroups int32) []int64 {
	accs = growInts(accs, ngroups, 0)
	if sel == nil {
		for i, v := range col {
			if !bat.IsNilFloat(v) {
				accs[gids[i]]++
			}
		}
		return accs
	}
	for _, i := range sel {
		if v := col[i]; !bat.IsNilFloat(v) {
			accs[gids[i]]++
		}
	}
	return accs
}

// MinIntNilPerGroup folds the minimum per group; nil inputs are skipped
// and an untouched group stays at the nil sentinel.
func MinIntNilPerGroup(col []int64, sel []int32, gids []int32, accs []int64, ngroups int32) []int64 {
	accs = growInts(accs, ngroups, bat.NilInt)
	fold := func(i int32) {
		v := col[i]
		if v == bat.NilInt {
			return
		}
		g := gids[i]
		if accs[g] == bat.NilInt || v < accs[g] {
			accs[g] = v
		}
	}
	if sel == nil {
		for i := range col {
			fold(int32(i))
		}
		return accs
	}
	for _, i := range sel {
		fold(i)
	}
	return accs
}

// MaxIntNilPerGroup folds the maximum per group (nil-aware).
func MaxIntNilPerGroup(col []int64, sel []int32, gids []int32, accs []int64, ngroups int32) []int64 {
	accs = growInts(accs, ngroups, bat.NilInt)
	fold := func(i int32) {
		v := col[i]
		if v == bat.NilInt {
			return
		}
		g := gids[i]
		if accs[g] == bat.NilInt || v > accs[g] {
			accs[g] = v
		}
	}
	if sel == nil {
		for i := range col {
			fold(int32(i))
		}
		return accs
	}
	for _, i := range sel {
		fold(i)
	}
	return accs
}

// MinFloatNilPerGroup folds the float minimum per group, skipping NaN;
// an untouched group stays NaN.
func MinFloatNilPerGroup(col []float64, sel []int32, gids []int32, accs []float64, ngroups int32) []float64 {
	accs = growFloats(accs, ngroups, math.NaN())
	fold := func(i int32) {
		v := col[i]
		if bat.IsNilFloat(v) {
			return
		}
		g := gids[i]
		if bat.IsNilFloat(accs[g]) || v < accs[g] {
			accs[g] = v
		}
	}
	if sel == nil {
		for i := range col {
			fold(int32(i))
		}
		return accs
	}
	for _, i := range sel {
		fold(i)
	}
	return accs
}

// MaxFloatNilPerGroup folds the float maximum per group (NaN-aware).
func MaxFloatNilPerGroup(col []float64, sel []int32, gids []int32, accs []float64, ngroups int32) []float64 {
	accs = growFloats(accs, ngroups, math.NaN())
	fold := func(i int32) {
		v := col[i]
		if bat.IsNilFloat(v) {
			return
		}
		g := gids[i]
		if bat.IsNilFloat(accs[g]) || v > accs[g] {
			accs[g] = v
		}
	}
	if sel == nil {
		for i := range col {
			fold(int32(i))
		}
		return accs
	}
	for _, i := range sel {
		fold(i)
	}
	return accs
}
