package vector

// Vectorized primitives: each is one tight loop over a vector, optionally
// driven by a selection vector. These are the X100 equivalents of the BAT
// algebra's bulk operators; all per-tuple interpretation decisions are
// hoisted out of these loops.

// SelGeInt appends to out the indexes i (drawn from sel, or 0..n-1) with
// col[i] >= v, returning the filled slice.
func SelGeInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x >= v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] >= v {
			out = append(out, i)
		}
	}
	return out
}

// SelLtInt appends indexes with col[i] < v.
func SelLtInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x < v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] < v {
			out = append(out, i)
		}
	}
	return out
}

// SelEqInt appends indexes with col[i] == v.
func SelEqInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x == v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] == v {
			out = append(out, i)
		}
	}
	return out
}

// SelLeFloat appends indexes with col[i] <= v.
func SelLeFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x <= v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] <= v {
			out = append(out, i)
		}
	}
	return out
}

// SelGeFloat appends indexes with col[i] >= v.
func SelGeFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x >= v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] >= v {
			out = append(out, i)
		}
	}
	return out
}

// SelLeInt appends indexes with col[i] <= v.
func SelLeInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x <= v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] <= v {
			out = append(out, i)
		}
	}
	return out
}

// SelGtInt appends indexes with col[i] > v.
func SelGtInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x > v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] > v {
			out = append(out, i)
		}
	}
	return out
}

// SelNeInt appends indexes with col[i] != v.
func SelNeInt(col []int64, sel []int32, v int64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x != v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] != v {
			out = append(out, i)
		}
	}
	return out
}

// SelLtFloat appends indexes with col[i] < v.
func SelLtFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x < v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] < v {
			out = append(out, i)
		}
	}
	return out
}

// SelGtFloat appends indexes with col[i] > v.
func SelGtFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x > v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] > v {
			out = append(out, i)
		}
	}
	return out
}

// SelEqFloat appends indexes with col[i] == v (never NaN, the float nil).
func SelEqFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x == v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if col[i] == v {
			out = append(out, i)
		}
	}
	return out
}

// SelNeFloat appends indexes with col[i] != v, excluding NaN (the float
// nil: NULL <> v is unknown, not true).
func SelNeFloat(col []float64, sel []int32, v float64, out []int32) []int32 {
	if sel == nil {
		for i, x := range col {
			if x != v && x == x {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		x := col[i]
		if x != v && x == x {
			out = append(out, i)
		}
	}
	return out
}

// MapAddInt computes out[i] = a[i] + b[i] for qualifying i.
func MapAddInt(a, b []int64, sel []int32, out []int64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] + b[i]
	}
}

// MapMulInt computes out[i] = a[i] * b[i].
func MapMulInt(a, b []int64, sel []int32, out []int64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] * b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] * b[i]
	}
}

// MapAddIntConst computes out[i] = a[i] + v.
func MapAddIntConst(a []int64, v int64, sel []int32, out []int64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] + v
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] + v
	}
}

// MapMulFloat computes out[i] = a[i] * b[i].
func MapMulFloat(a, b []float64, sel []int32, out []float64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] * b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] * b[i]
	}
}

// MapSubConstFloat computes out[i] = v - a[i].
func MapSubConstFloat(v float64, a []float64, sel []int32, out []float64) {
	if sel == nil {
		for i := range a {
			out[i] = v - a[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = v - a[i]
	}
}

// MapAddFloat computes out[i] = a[i] + b[i].
func MapAddFloat(a, b []float64, sel []int32, out []float64) {
	if sel == nil {
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return
	}
	for _, i := range sel {
		out[i] = a[i] + b[i]
	}
}

// SumInt folds qualifying values of col into a scalar.
func SumInt(col []int64, sel []int32) int64 {
	var s int64
	if sel == nil {
		for _, x := range col {
			s += x
		}
		return s
	}
	for _, i := range sel {
		s += col[i]
	}
	return s
}

// SumFloat folds qualifying values of col into a scalar.
func SumFloat(col []float64, sel []int32) float64 {
	var s float64
	if sel == nil {
		for _, x := range col {
			s += x
		}
		return s
	}
	for _, i := range sel {
		s += col[i]
	}
	return s
}

// CountSel returns the number of qualifying rows.
func CountSel(n int, sel []int32) int64 {
	if sel == nil {
		return int64(n)
	}
	return int64(len(sel))
}

// HashGroupInt maps each qualifying key to a dense group id via the shared
// groups map, writing ids into gids (full-length, indexed by row).
func HashGroupInt(keys []int64, sel []int32, groups map[int64]int32, gids []int32) int32 {
	next := int32(len(groups))
	do := func(i int32) {
		k := keys[i]
		g, ok := groups[k]
		if !ok {
			g = next
			groups[k] = g
			next++
		}
		gids[i] = g
	}
	if sel == nil {
		for i := range keys {
			do(int32(i))
		}
	} else {
		for _, i := range sel {
			do(i)
		}
	}
	return next
}

// SumIntPerGroup folds col values into accs[gids[i]] for qualifying rows,
// growing accs to ngroups first. It returns accs.
func SumIntPerGroup(col []int64, sel []int32, gids []int32, accs []int64, ngroups int32) []int64 {
	for int32(len(accs)) < ngroups {
		accs = append(accs, 0)
	}
	if sel == nil {
		for i := range col {
			accs[gids[i]] += col[i]
		}
		return accs
	}
	for _, i := range sel {
		accs[gids[i]] += col[i]
	}
	return accs
}

// SumFloatPerGroup folds float col values per group.
func SumFloatPerGroup(col []float64, sel []int32, gids []int32, accs []float64, ngroups int32) []float64 {
	for int32(len(accs)) < ngroups {
		accs = append(accs, 0)
	}
	if sel == nil {
		for i := range col {
			accs[gids[i]] += col[i]
		}
		return accs
	}
	for _, i := range sel {
		accs[gids[i]] += col[i]
	}
	return accs
}

// CountPerGroup increments counts[gids[i]] for qualifying rows.
func CountPerGroup(sel []int32, n int, gids []int32, counts []int64, ngroups int32) []int64 {
	for int32(len(counts)) < ngroups {
		counts = append(counts, 0)
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			counts[gids[i]]++
		}
		return counts
	}
	for _, i := range sel {
		counts[gids[i]]++
	}
	return counts
}
