package vector

// External sort against the in-memory sort as oracle, driven through a
// fake in-process SpillWriter/SpillReader so the vector layer is
// testable without the spill package (which imports vector). The real
// file-backed path is covered at the engine level.

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/bat"
	"repro/internal/memgov"
)

type fakeRun struct{ batches []*Batch }

func (f *fakeRun) Open() (SpillReader, error) {
	return &fakeReader{batches: f.batches}, nil
}

type fakeReader struct {
	batches []*Batch
	i       int
}

func (r *fakeReader) Next() (*Batch, error) {
	if r.i >= len(r.batches) {
		return nil, nil
	}
	b := r.batches[r.i]
	r.i++
	return b, nil
}

func (r *fakeReader) Close() error { return nil }

type fakeWriter struct {
	run  *fakeRun
	fail error // non-nil: WriteBatch fails
}

func (w *fakeWriter) WriteBatch(b *Batch) error {
	if w.fail != nil {
		return w.fail
	}
	w.run.batches = append(w.run.batches, cloneBatch(b))
	return nil
}

func (w *fakeWriter) Finish() (SpillRun, error) { return w.run, nil }

// externalSort runs the execSort-shaped plan: parallel SortRun
// fragments under an Exchange with rowid tiebreaks, merged by
// MergeRuns, optionally budgeted and spillable.
func externalSort(t *testing.T, src *Source, key, workers, limit int, desc bool, res *memgov.Reservation, sink SpillSink) ([][]any, error) {
	t.Helper()
	runs := &RunSet{}
	rowID := len(src.Cols)
	ex := &Exchange{
		Source:  src,
		Workers: workers,
		RowIDs:  true,
		//lint:ignore ctxmorsel bounded test plan, no cancellation surface
		Plan: func(scan Operator) Operator {
			return &SortRun{Child: scan, Key: key, RowID: rowID, Desc: desc, Limit: limit,
				Res: res, Spill: sink, Runs: runs, Size: 64}
		},
	}
	m := &MergeRuns{Child: ex, Key: key, RowID: rowID, Desc: desc, Limit: limit, Size: 128, Ext: runs}
	return Drain(m)
}

func sortInput(n int) *Source {
	rng := rand.New(rand.NewSource(7))
	ints := make([]int64, n)
	flts := make([]float64, n)
	for i := range ints {
		switch rng.Intn(10) {
		case 0:
			ints[i] = bat.NilInt
			flts[i] = math.NaN()
		default:
			ints[i] = int64(rng.Intn(n / 4)) // plenty of key ties for the rowid tiebreak
			flts[i] = rng.Float64() * 100
		}
	}
	src, err := NewSource([]string{"k", "v"}, []Col{
		{Kind: KindInt, Ints: ints},
		{Kind: KindFloat, Floats: flts},
	})
	if err != nil {
		panic(err)
	}
	return src
}

func TestExternalSortMatchesInMemory(t *testing.T) {
	src := sortInput(20000)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, desc := range []bool{false, true} {
			for _, limit := range []int{-1, 137} {
				want, err := externalSort(t, src, 0, workers, limit, desc, nil, nil)
				if err != nil {
					t.Fatalf("in-memory sort: %v", err)
				}
				// ~32KB budget across all workers: every worker must spill.
				res := memgov.New(32<<10, memgov.Spill)
				var spills atomic.Int32 // sink runs on concurrent workers
				sink := SpillSink(func(label string) (SpillWriter, error) {
					spills.Add(1)
					return &fakeWriter{run: &fakeRun{}}, nil
				})
				got, err := externalSort(t, src, 0, workers, limit, desc, res, sink)
				if err != nil {
					t.Fatalf("external sort (w=%d desc=%v limit=%d): %v", workers, desc, limit, err)
				}
				if spills.Load() == 0 {
					t.Fatalf("w=%d desc=%v limit=%d: budget never forced a spill", workers, desc, limit)
				}
				if len(got) != len(want) {
					t.Fatalf("w=%d desc=%v limit=%d: %d rows, want %d", workers, desc, limit, len(got), len(want))
				}
				for i := range want {
					for c := range want[i] {
						wv, gv := want[i][c], got[i][c]
						if wf, ok := wv.(float64); ok {
							gf := gv.(float64)
							if bat.IsNilFloat(wf) && bat.IsNilFloat(gf) {
								continue
							}
						}
						if wv != gv {
							t.Fatalf("w=%d desc=%v limit=%d row %d col %d: got %v, want %v", workers, desc, limit, i, c, gv, wv)
						}
					}
				}
				if used := res.Used(); used != 0 {
					t.Fatalf("w=%d: %d bytes still reserved after close", workers, used)
				}
			}
		}
	}
}

func TestExternalSortRejectWithoutSpill(t *testing.T) {
	src := sortInput(20000)
	res := memgov.New(32<<10, memgov.Reject)
	_, err := externalSort(t, src, 0, 2, -1, false, res, nil)
	if !errors.Is(err, memgov.ErrExceeded) {
		t.Fatalf("reject policy: got %v, want ErrExceeded", err)
	}
	if used := res.Used(); used != 0 {
		t.Fatalf("%d bytes still reserved after failed sort", used)
	}
}

func TestExternalSortSpillWriteFailure(t *testing.T) {
	src := sortInput(20000)
	res := memgov.New(32<<10, memgov.Spill)
	boom := errors.New("spill write failed")
	sink := SpillSink(func(label string) (SpillWriter, error) {
		return &fakeWriter{run: &fakeRun{}, fail: boom}, nil
	})
	_, err := externalSort(t, src, 0, 2, -1, false, res, sink)
	if !errors.Is(err, boom) {
		t.Fatalf("spill failure must surface: got %v", err)
	}
	if used := res.Used(); used != 0 {
		t.Fatalf("%d bytes still reserved after failed spill", used)
	}
}
