package vector

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/radix"
)

func chainRows(t *HashTable, key int64) []int32 {
	var rows []int32
	for r := t.First(key); r >= 0; r = t.Next(r) {
		rows = append(rows, r)
	}
	return rows
}

func TestHashTableBasic(t *testing.T) {
	ht := BuildHashTable([]int64{10, 20, 10, 30})
	if ht.Len() != 4 {
		t.Fatalf("Len = %d", ht.Len())
	}
	got := chainRows(ht, 10)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Fatalf("rows(10) = %v", got)
	}
	if r := ht.First(99); r != -1 {
		t.Fatalf("First(absent) = %d", r)
	}
	if got := chainRows(ht, 30); !reflect.DeepEqual(got, []int32{3}) {
		t.Fatalf("rows(30) = %v", got)
	}
}

func TestHashTableGrow(t *testing.T) {
	// Insert past the pre-sized capacity to force rehashing.
	ht := NewHashTable(2)
	n := 1000
	for i := 0; i < n; i++ {
		ht.Insert(int64(i%100), int32(i))
	}
	if ht.Len() != n {
		t.Fatalf("Len = %d", ht.Len())
	}
	for k := 0; k < 100; k++ {
		if got := len(chainRows(ht, int64(k))); got != 10 {
			t.Fatalf("key %d: %d rows, want 10", k, got)
		}
	}
}

// refRows is the map-based build the HashTable replaces, kept as the
// property-test oracle.
func refRows(keys []int64) map[int64][]int32 {
	m := make(map[int64][]int32)
	for i, k := range keys {
		m[k] = append(m[k], int32(i))
	}
	return m
}

// Property: for arbitrary keys (including duplicates), the chain of every
// key matches the map-based oracle as a set, and absent keys miss.
func TestQuickHashTableMatchesMap(t *testing.T) {
	f := func(raw []int64, skew8 uint8) bool {
		keys := make([]int64, len(raw))
		for i, v := range raw {
			// Narrow the domain so duplicates are common; skew8 biases a
			// hot key to exercise long chains.
			keys[i] = v % 16
			if uint8(i)%4 < skew8%4 {
				keys[i] = 7
			}
		}
		ht := BuildHashTable(keys)
		ref := refRows(keys)
		for k, want := range ref {
			got := chainRows(ht, k)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return ht.First(12345) == -1 || ref[12345] != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the radix-partitioned table yields the same match sets as the
// flat table for arbitrary keys and partition bit counts.
func TestQuickPartitionedTableMatchesFlat(t *testing.T) {
	f := func(raw []int64, bits8 uint8) bool {
		keys := make([]int64, len(raw))
		for i, v := range raw {
			keys[i] = v % 64
		}
		bits := int(bits8%6) + 1
		pt := BuildPartitionedTable(keys, bits)
		ht := BuildHashTable(keys)
		for _, k := range keys {
			var got []int32
			pt.ForEach(k, func(r int32) { got = append(got, r) })
			want := chainRows(ht, k)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		var miss []int32
		pt.ForEach(1<<40, func(r int32) { miss = append(miss, r) })
		return len(miss) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// joinPairs runs HashJoinOp over the given keys (payload = build row id)
// and returns (build row, probe row) pairs.
func joinPairs(t *testing.T, bk, pk []int64, size int) []radix.OIDPair {
	t.Helper()
	rowIDs := make([]int64, len(bk))
	for i := range rowIDs {
		rowIDs[i] = int64(i)
	}
	build, err := NewSource([]string{"k", "row"}, []Col{
		{Kind: KindInt, Ints: bk}, {Kind: KindInt, Ints: rowIDs}})
	if err != nil {
		t.Fatal(err)
	}
	probeIDs := make([]int64, len(pk))
	for i := range probeIDs {
		probeIDs[i] = int64(i)
	}
	probe, err := NewSource([]string{"k", "row"}, []Col{
		{Kind: KindInt, Ints: pk}, {Kind: KindInt, Ints: probeIDs}})
	if err != nil {
		t.Fatal(err)
	}
	j := &HashJoinOp{
		Build: NewScan(build, size), Probe: NewScan(probe, size),
		BuildKey: 0, ProbeKey: 0, BuildPayload: []int{1},
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]radix.OIDPair, len(rows))
	for i, r := range rows {
		pairs[i] = radix.OIDPair{L: bat.OID(r[2].(int64)), R: bat.OID(r[1].(int64))}
	}
	return pairs
}

func sortPairs(p []radix.OIDPair) {
	sort.Slice(p, func(i, j int) bool {
		if p[i].L != p[j].L {
			return p[i].L < p[j].L
		}
		return p[i].R < p[j].R
	})
}

// Property: the table-backed HashJoinOp agrees with radix.SimpleHashJoin
// on random keys, including duplicate-heavy and skewed distributions.
func TestQuickJoinMatchesSimpleHashJoin(t *testing.T) {
	f := func(bk8, pk8 []uint8, mode uint8) bool {
		if len(bk8) > 60 {
			bk8 = bk8[:60]
		}
		if len(pk8) > 60 {
			pk8 = pk8[:60]
		}
		conv := func(raw []uint8) ([]int64, []radix.Tuple) {
			keys := make([]int64, len(raw))
			tuples := make([]radix.Tuple, len(raw))
			for i, v := range raw {
				k := int64(v % 16)
				if mode%3 == 1 && i%2 == 0 {
					k = 3 // heavy skew: half the rows share one key
				}
				keys[i] = k
				tuples[i] = radix.Tuple{OID: bat.OID(i), Val: k}
			}
			return keys, tuples
		}
		bk, bt := conv(bk8)
		pk, pt := conv(pk8)
		got := joinPairs(t, bk, pk, int(mode%7)+1)
		want := radix.SimpleHashJoin(bt, pt)
		sortPairs(got)
		sortPairs(want)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// The partitioned build path only triggers past partitionRows rows; cover
// it once with a deterministic large-ish join checked against the oracle.
func TestJoinPartitionedBuildPath(t *testing.T) {
	if testing.Short() {
		t.Skip("large build in -short mode")
	}
	n := partitionRows + 1000
	r := rand.New(rand.NewSource(99))
	bk := make([]int64, n)
	for i := range bk {
		bk[i] = r.Int63n(int64(n))
	}
	pk := make([]int64, 2000)
	for i := range pk {
		pk[i] = r.Int63n(int64(n))
	}
	got := joinPairs(t, bk, pk, 1024)

	ref := refRows(bk)
	var want []radix.OIDPair
	for j, k := range pk {
		for _, i := range ref[k] {
			want = append(want, radix.OIDPair{L: bat.OID(i), R: bat.OID(j)})
		}
	}
	sortPairs(got)
	sortPairs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partitioned join: %d pairs, want %d", len(got), len(want))
	}
}
