package vector

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bat"
	"repro/internal/memgov"
	"repro/internal/radix"
)

// Filter evaluates a conjunction of simple predicates per batch, refining
// the selection vector. Predicates are pre-compiled to primitive calls —
// the per-vector (not per-tuple) interpretation X100 relies on.
type Filter struct {
	Child Operator
	Preds []Pred
	sel   []int32
	tmp   []int32
}

// PredOp is a comparison code for vectorized predicates.
type PredOp uint8

// Predicate operator codes. The *Nil int variants skip the nil sentinel
// (bat.NilInt sorts below every value, so plain <, <=, <> would let
// stored NULLs qualify); PredIsNull/PredIsNotNull select ON nil-ness.
const (
	PredGe PredOp = iota
	PredLt
	PredEq
	PredLeF
	PredGeF
	PredLe
	PredGt
	PredNe
	PredLtF
	PredGtF
	PredEqF
	PredNeF
	PredLtNil
	PredLeNil
	PredNeNil
	PredIsNull
	PredIsNotNull
	PredIsNullF
	PredIsNotNullF
)

// Pred is one predicate: column ColIdx compared against a constant.
type Pred struct {
	ColIdx int
	Op     PredOp
	IntVal int64
	FltVal float64
}

// Open implements Operator.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Operator.
func (f *Filter) Next() (*Batch, error) {
	for {
		b, err := f.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		sel := b.Sel
		for pi := range f.Preds {
			p := &f.Preds[pi]
			out := f.sel[:0]
			if out == nil {
				// nil means "all rows" to the primitives; an empty
				// selection must stay a non-nil empty slice.
				out = make([]int32, 0, b.N)
			}
			c := &b.Cols[p.ColIdx]
			switch p.Op {
			case PredGe:
				out = SelGeInt(c.Ints, sel, p.IntVal, out)
			case PredLt:
				out = SelLtInt(c.Ints, sel, p.IntVal, out)
			case PredEq:
				out = SelEqInt(c.Ints, sel, p.IntVal, out)
			case PredLe:
				out = SelLeInt(c.Ints, sel, p.IntVal, out)
			case PredGt:
				out = SelGtInt(c.Ints, sel, p.IntVal, out)
			case PredNe:
				out = SelNeInt(c.Ints, sel, p.IntVal, out)
			case PredLeF:
				out = SelLeFloat(c.Floats, sel, p.FltVal, out)
			case PredGeF:
				out = SelGeFloat(c.Floats, sel, p.FltVal, out)
			case PredLtF:
				out = SelLtFloat(c.Floats, sel, p.FltVal, out)
			case PredGtF:
				out = SelGtFloat(c.Floats, sel, p.FltVal, out)
			case PredEqF:
				out = SelEqFloat(c.Floats, sel, p.FltVal, out)
			case PredNeF:
				out = SelNeFloat(c.Floats, sel, p.FltVal, out)
			case PredLtNil:
				out = SelLtIntNil(c.Ints, sel, p.IntVal, out)
			case PredLeNil:
				out = SelLeIntNil(c.Ints, sel, p.IntVal, out)
			case PredNeNil:
				out = SelNeIntNil(c.Ints, sel, p.IntVal, out)
			case PredIsNull:
				out = SelNilInt(c.Ints, sel, out)
			case PredIsNotNull:
				out = SelNotNilInt(c.Ints, sel, out)
			case PredIsNullF:
				out = SelNilFloat(c.Floats, sel, out)
			case PredIsNotNullF:
				out = SelNotNilFloat(c.Floats, sel, out)
			default:
				return nil, fmt.Errorf("vector: bad predicate op %d", p.Op)
			}
			f.sel, f.tmp = f.tmp, out
			sel = out
		}
		if len(sel) == 0 {
			continue // fully filtered batch; pull the next one
		}
		b.Sel = sel
		return b, nil
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// --- expressions for Project ---

// Expr is a vectorized expression compiled over batch columns.
type Expr interface {
	// eval computes the expression into a full-length column for batch b,
	// touching only qualifying rows.
	eval(b *Batch, scratch *scratch) (Col, error)
	// kind reports the result kind given input columns.
	kind(cols []Col) Kind
}

type scratch struct {
	ints [][]int64
	flts [][]float64
}

func (s *scratch) intBuf(n int) []int64 {
	for i := range s.ints {
		if cap(s.ints[i]) >= n {
			buf := s.ints[i][:n]
			s.ints = append(s.ints[:i], s.ints[i+1:]...)
			return buf
		}
	}
	return make([]int64, n)
}

func (s *scratch) fltBuf(n int) []float64 {
	for i := range s.flts {
		if cap(s.flts[i]) >= n {
			buf := s.flts[i][:n]
			s.flts = append(s.flts[:i], s.flts[i+1:]...)
			return buf
		}
	}
	return make([]float64, n)
}

// ColRef references batch column i.
type ColRef struct{ Idx int }

func (c ColRef) eval(b *Batch, _ *scratch) (Col, error) {
	if c.Idx < 0 || c.Idx >= len(b.Cols) {
		return Col{}, fmt.Errorf("vector: column %d out of range", c.Idx)
	}
	return b.Cols[c.Idx], nil
}

func (c ColRef) kind(cols []Col) Kind { return cols[c.Idx].Kind }

// ExprOp enumerates vectorized expression operators.
type ExprOp uint8

// Expression operator codes.
const (
	EAddInt ExprOp = iota
	EMulInt
	EAddIntConst
	EMulFloat
	EAddFloat
	ESubConstFloat // const - expr
	// Nil-aware variants mirroring the MAL calc kernels bit for bit
	// (INT nil sentinel propagates; INT->FLOAT widens nil to NaN).
	// Query expressions lowered from SQL use these, so the vector path
	// and the interpreter agree on every nil-laden row.
	EAddIntNil
	ESubIntNil
	EMulIntNil
	EAddIntConstNil
	EMulIntConstNil
	ESubFloat
	EAddFloatConst
	EMulFloatConst
	EIntToFloat // unary: widen L to float, nil -> NaN
)

// Bin is a binary vectorized expression.
type Bin struct {
	Op       ExprOp
	L, R     Expr
	IntConst int64
	FltConst float64
}

func (e Bin) kind(cols []Col) Kind {
	switch e.Op {
	case EMulFloat, EAddFloat, ESubConstFloat, ESubFloat, EAddFloatConst, EMulFloatConst, EIntToFloat:
		return KindFloat
	}
	return KindInt
}

func (e Bin) eval(b *Batch, s *scratch) (Col, error) {
	switch e.Op {
	case EAddIntConst:
		l, err := e.L.eval(b, s)
		if err != nil {
			return Col{}, err
		}
		out := s.intBuf(b.N)
		MapAddIntConst(l.Ints, e.IntConst, b.Sel, out)
		return Col{Kind: KindInt, Ints: out}, nil
	case ESubConstFloat:
		l, err := e.L.eval(b, s)
		if err != nil {
			return Col{}, err
		}
		out := s.fltBuf(b.N)
		MapSubConstFloat(e.FltConst, l.Floats, b.Sel, out)
		return Col{Kind: KindFloat, Floats: out}, nil
	case EAddIntConstNil:
		l, err := e.L.eval(b, s)
		if err != nil {
			return Col{}, err
		}
		out := s.intBuf(b.N)
		MapAddIntConstNil(l.Ints, e.IntConst, b.Sel, out)
		return Col{Kind: KindInt, Ints: out}, nil
	case EMulIntConstNil:
		l, err := e.L.eval(b, s)
		if err != nil {
			return Col{}, err
		}
		out := s.intBuf(b.N)
		MapMulIntConstNil(l.Ints, e.IntConst, b.Sel, out)
		return Col{Kind: KindInt, Ints: out}, nil
	case EAddFloatConst:
		l, err := e.L.eval(b, s)
		if err != nil {
			return Col{}, err
		}
		out := s.fltBuf(b.N)
		MapAddFloatConst(l.Floats, e.FltConst, b.Sel, out)
		return Col{Kind: KindFloat, Floats: out}, nil
	case EMulFloatConst:
		l, err := e.L.eval(b, s)
		if err != nil {
			return Col{}, err
		}
		out := s.fltBuf(b.N)
		MapMulFloatConst(l.Floats, e.FltConst, b.Sel, out)
		return Col{Kind: KindFloat, Floats: out}, nil
	case EIntToFloat:
		l, err := e.L.eval(b, s)
		if err != nil {
			return Col{}, err
		}
		out := s.fltBuf(b.N)
		MapIntToFloat(l.Ints, b.Sel, out)
		return Col{Kind: KindFloat, Floats: out}, nil
	}
	l, err := e.L.eval(b, s)
	if err != nil {
		return Col{}, err
	}
	r, err := e.R.eval(b, s)
	if err != nil {
		return Col{}, err
	}
	switch e.Op {
	case EAddInt:
		out := s.intBuf(b.N)
		MapAddInt(l.Ints, r.Ints, b.Sel, out)
		return Col{Kind: KindInt, Ints: out}, nil
	case EMulInt:
		out := s.intBuf(b.N)
		MapMulInt(l.Ints, r.Ints, b.Sel, out)
		return Col{Kind: KindInt, Ints: out}, nil
	case EMulFloat:
		out := s.fltBuf(b.N)
		MapMulFloat(l.Floats, r.Floats, b.Sel, out)
		return Col{Kind: KindFloat, Floats: out}, nil
	case EAddFloat:
		out := s.fltBuf(b.N)
		MapAddFloat(l.Floats, r.Floats, b.Sel, out)
		return Col{Kind: KindFloat, Floats: out}, nil
	case EAddIntNil:
		out := s.intBuf(b.N)
		MapAddIntNil(l.Ints, r.Ints, b.Sel, out)
		return Col{Kind: KindInt, Ints: out}, nil
	case ESubIntNil:
		out := s.intBuf(b.N)
		MapSubIntNil(l.Ints, r.Ints, b.Sel, out)
		return Col{Kind: KindInt, Ints: out}, nil
	case EMulIntNil:
		out := s.intBuf(b.N)
		MapMulIntNil(l.Ints, r.Ints, b.Sel, out)
		return Col{Kind: KindInt, Ints: out}, nil
	case ESubFloat:
		out := s.fltBuf(b.N)
		MapSubFloat(l.Floats, r.Floats, b.Sel, out)
		return Col{Kind: KindFloat, Floats: out}, nil
	}
	return Col{}, fmt.Errorf("vector: bad expression op %d", e.Op)
}

// Project computes expressions per batch, emitting batches whose columns
// are the expression results (selection vector carried through).
type Project struct {
	Child Operator
	Exprs []Expr
	s     scratch
	out   Batch
}

// Open implements Operator.
func (p *Project) Open() error { return p.Child.Open() }

// Next implements Operator.
func (p *Project) Next() (*Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	// Recycle previous output columns as scratch. ColRef outputs ALIAS
	// the child's columns (possibly shared source storage) — handing
	// those out as writable scratch would corrupt the source, so only
	// computed (expression-owned) columns are recycled.
	for i, c := range p.out.Cols {
		if _, isRef := p.Exprs[i].(ColRef); isRef {
			continue
		}
		switch c.Kind {
		case KindInt:
			if c.Ints != nil {
				p.s.ints = append(p.s.ints, c.Ints)
			}
		case KindFloat:
			if c.Floats != nil {
				p.s.flts = append(p.s.flts, c.Floats)
			}
		}
	}
	cols := make([]Col, len(p.Exprs))
	for i, e := range p.Exprs {
		cols[i], err = e.eval(b, &p.s)
		if err != nil {
			return nil, err
		}
	}
	p.out = Batch{N: b.N, Sel: b.Sel, Cols: cols}
	return &p.out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// --- aggregation ---

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate kinds. The first three are the nil-blind fast paths (the
// caller guarantees nil-free inputs); the *Nil / NN / Min / Max kinds
// are nil-aware — bat.NilInt and NaN inputs are skipped, min/max
// accumulators rest at the nil sentinel, so an all-NULL group reads
// back as nil. See the per-group primitives for the merge property
// that makes these kinds safe to re-aggregate across workers.
const (
	AggSumInt AggKind = iota
	AggSumFloat
	AggCount
	AggSumIntNil
	AggSumFloatNil
	AggCountNNInt
	AggCountNNFloat
	AggMinInt
	AggMaxInt
	AggMinFloat
	AggMaxFloat
)

// Float reports whether the aggregate emits a float column.
func (k AggKind) Float() bool {
	switch k {
	case AggSumFloat, AggSumFloatNil, AggMinFloat, AggMaxFloat:
		return true
	}
	return false
}

// init returns the accumulator identity element.
func (k AggKind) initInt() int64 {
	switch k {
	case AggMinInt, AggMaxInt:
		return bat.NilInt
	}
	return 0
}

func (k AggKind) initFloat() float64 {
	switch k {
	case AggMinFloat, AggMaxFloat:
		return math.NaN()
	}
	return 0
}

// AggSpec is one aggregate over batch column Col.
type AggSpec struct {
	Kind AggKind
	Col  int
}

// Agg drains its child, aggregating per group of the int key column(s).
// Keys lists the key columns — any number of them; the legacy KeyCol
// field is honored when Keys is nil (KeyCol < 0 means a single global
// group). Single-key group ids are assigned by the shared
// open-addressing radix.GroupTable, composite two-key ids by the
// radix.PairGroupTable (24-byte slots holding both halves), and wider
// tuples by the radix.MultiGroupTable (hash-first slots over a flat
// row-major tuple array) — Fibonacci hashing, flat power-of-two slots,
// no per-key allocations — in first-seen order, the same order the
// final batch emits. It emits one final batch with columns: the
// key(s), then one column per aggregate. A keyed aggregation over
// empty input emits an empty batch (zero groups); the global form
// emits its identity row.
type Agg struct {
	Child  Operator
	KeyCol int
	Keys   []int // overrides KeyCol when non-nil
	Aggs   []AggSpec

	// Res, when set, is charged for the grouping state (table slots,
	// key arrays, accumulator columns) as it grows; a denied charge
	// surfaces as the query's memgov.ErrExceeded, which the physical
	// layer may answer by re-planning to grace-hash partitioning.
	Res *memgov.Reservation

	done    bool
	charged int64
}

// keyCols resolves the effective key columns.
func (a *Agg) keyCols() []int {
	if a.Keys != nil {
		return a.Keys
	}
	if a.KeyCol >= 0 {
		return []int{a.KeyCol}
	}
	return nil
}

// Open implements Operator.
func (a *Agg) Open() error { a.done = false; return a.Child.Open() }

// Next implements Operator.
func (a *Agg) Next() (*Batch, error) {
	if a.done {
		return nil, nil
	}
	a.done = true

	keys := a.keyCols()
	var gt *radix.GroupTable
	var pg *PairGrouper
	var mg *MultiGrouper
	switch {
	case len(keys) == 1:
		gt = radix.NewGroupTable(1024)
	case len(keys) == 2:
		pg = NewPairGrouper(1024)
	case len(keys) > 2:
		mg = NewMultiGrouper(len(keys), 1024)
	}
	var gids []int32
	var keyBufs [][]int64
	if mg != nil {
		keyBufs = make([][]int64, len(keys))
	}
	intAccs := make([][]int64, len(a.Aggs))
	fltAccs := make([][]float64, len(a.Aggs))
	ngroups := int32(1)

	for {
		b, err := a.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if cap(gids) < b.N {
			gids = make([]int32, b.N)
		}
		gids = gids[:b.N]
		switch {
		case gt != nil:
			ngroups = AssignGroups(b.Cols[keys[0]].Ints, b.Sel, gt, gids)
		case pg != nil:
			ngroups = pg.Assign(b.Cols[keys[0]].Ints, b.Cols[keys[1]].Ints, b.Sel, gids)
		case mg != nil:
			for ki, k := range keys {
				keyBufs[ki] = b.Cols[k].Ints
			}
			ngroups = mg.Assign(keyBufs, b.Sel, gids)
		default:
			for i := range gids {
				gids[i] = 0
			}
		}
		for ai, spec := range a.Aggs {
			switch spec.Kind {
			case AggSumInt:
				intAccs[ai] = SumIntPerGroup(b.Cols[spec.Col].Ints, b.Sel, gids, intAccs[ai], ngroups)
			case AggSumFloat:
				fltAccs[ai] = SumFloatPerGroup(b.Cols[spec.Col].Floats, b.Sel, gids, fltAccs[ai], ngroups)
			case AggCount:
				intAccs[ai] = CountPerGroup(b.Sel, b.N, gids, intAccs[ai], ngroups)
			case AggSumIntNil:
				intAccs[ai] = SumIntNilPerGroup(b.Cols[spec.Col].Ints, b.Sel, gids, intAccs[ai], ngroups)
			case AggSumFloatNil:
				fltAccs[ai] = SumFloatNilPerGroup(b.Cols[spec.Col].Floats, b.Sel, gids, fltAccs[ai], ngroups)
			case AggCountNNInt:
				intAccs[ai] = CountNNIntPerGroup(b.Cols[spec.Col].Ints, b.Sel, gids, intAccs[ai], ngroups)
			case AggCountNNFloat:
				intAccs[ai] = CountNNFloatPerGroup(b.Cols[spec.Col].Floats, b.Sel, gids, intAccs[ai], ngroups)
			case AggMinInt:
				intAccs[ai] = MinIntNilPerGroup(b.Cols[spec.Col].Ints, b.Sel, gids, intAccs[ai], ngroups)
			case AggMaxInt:
				intAccs[ai] = MaxIntNilPerGroup(b.Cols[spec.Col].Ints, b.Sel, gids, intAccs[ai], ngroups)
			case AggMinFloat:
				fltAccs[ai] = MinFloatNilPerGroup(b.Cols[spec.Col].Floats, b.Sel, gids, fltAccs[ai], ngroups)
			case AggMaxFloat:
				fltAccs[ai] = MaxFloatNilPerGroup(b.Cols[spec.Col].Floats, b.Sel, gids, fltAccs[ai], ngroups)
			default:
				return nil, errors.New("vector: bad aggregate kind")
			}
		}
		if a.Res != nil {
			foot := aggFootprint(gt, pg, mg, intAccs, fltAccs)
			if d := foot - a.charged; d > 0 {
				if err := a.Res.Acquire(d); err != nil {
					return nil, err
				}
				a.charged = foot
			}
		}
	}

	n := 1
	var cols []Col
	switch {
	case gt != nil:
		n = gt.Len()
		// Keys() aliases the table, which dies with this call — safe to
		// hand off directly.
		cols = append(cols, Col{Kind: KindInt, Ints: gt.Keys()})
	case pg != nil:
		n = pg.T.Len()
		cols = append(cols,
			Col{Kind: KindInt, Ints: pg.K1},
			Col{Kind: KindInt, Ints: pg.K2})
	case mg != nil:
		n = mg.T.Len()
		for _, ks := range mg.Keys {
			cols = append(cols, Col{Kind: KindInt, Ints: ks})
		}
	}
	for ai, spec := range a.Aggs {
		if spec.Kind.Float() {
			cols = append(cols, Col{Kind: KindFloat, Floats: growFloats(fltAccs[ai], int32(n), spec.Kind.initFloat())})
		} else {
			cols = append(cols, Col{Kind: KindInt, Ints: growInts(intAccs[ai], int32(n), spec.Kind.initInt())})
		}
	}
	return &Batch{N: n, Cols: cols}, nil
}

// Close implements Operator: the grouping state dies with the
// operator, so its reservation charge is handed back here — which is
// also what lets a failed merged-plan attempt return its memory before
// the grace-hash re-plan starts over.
func (a *Agg) Close() error {
	if a.charged != 0 {
		a.Res.Release(a.charged)
		a.charged = 0
	}
	return a.Child.Close()
}

// aggFootprint is the live heap held by one Agg's grouping state.
func aggFootprint(gt *radix.GroupTable, pg *PairGrouper, mg *MultiGrouper, intAccs [][]int64, fltAccs [][]float64) int64 {
	var f int64
	if gt != nil {
		f += gt.MemBytes()
	}
	if pg != nil {
		f += pg.T.MemBytes() + int64(cap(pg.K1))*8 + int64(cap(pg.K2))*8
	}
	if mg != nil {
		f += mg.MemBytes()
	}
	for _, s := range intAccs {
		f += int64(cap(s)) * 8
	}
	for _, s := range fltAccs {
		f += int64(cap(s)) * 8
	}
	return f
}

// Drain pulls an operator tree to completion, returning all batches fully
// materialized (selection vectors applied). Intended for tests and result
// delivery, not inner loops.
func Drain(op Operator) ([][]any, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var rows [][]any
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rows, nil
		}
		b.ForEach(func(i int32) {
			row := make([]any, len(b.Cols))
			for c := range b.Cols {
				switch b.Cols[c].Kind {
				case KindInt:
					row[c] = b.Cols[c].Ints[i]
				case KindFloat:
					row[c] = b.Cols[c].Floats[i]
				case KindBool:
					row[c] = b.Cols[c].Bools[i]
				}
			}
			rows = append(rows, row)
		})
	}
}
