package vector

// The vectorized engine's join hash table IS the shared open-addressing
// core of internal/radix (paper §4, §5): radix.Table — Fibonacci
// hashing, power-of-two slots, flat []int32 duplicate chains, no per-key
// allocations, bat.NilInt keys never matching. Builds whose working set
// exceeds the cache are radix-partitioned (radix.PartitionedTable) with
// the multi-pass machinery of internal/radix — the Figure-2 partitioned
// hash join transplanted into the vectorized engine. The aliases below
// keep the engine's historical names; there is no second table layout.

import (
	"repro/internal/radix"
)

// HashTable is the shared open-addressing table (see radix.Table).
type HashTable = radix.Table

// NewHashTable returns a table pre-sized for n rows at load factor <= ½.
func NewHashTable(n int) *HashTable { return radix.NewTable(n) }

// BuildHashTable builds a table over keys, with row id i for keys[i].
func BuildHashTable(keys []int64) *HashTable { return radix.BuildTable(keys) }

// PartitionedTable is the radix-partitioned variant (see
// radix.PartitionedTable).
type PartitionedTable = radix.PartitionedTable

// BuildPartitionedTable radix-clusters keys on `bits` low hash bits and
// builds one cache-sized table per cluster.
func BuildPartitionedTable(keys []int64, bits int) *PartitionedTable {
	return radix.BuildPartitionedTable(keys, bits)
}

// partitionRows re-exports the build size beyond which JoinBuild's table
// radix-partitions.
const partitionRows = radix.PartitionRows
