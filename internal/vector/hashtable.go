package vector

// Cache-conscious join hash tables (paper §4, §5): an open-addressing
// int64 table with flat []int32 row-id storage replacing the
// map[int64][]int32 the first HashJoinOp hung off. The Go map costs a
// pointer chase per bucket plus one slice header + backing array
// allocation per distinct key; the layouts here are three flat arrays
// (slot keys, slot heads, a row-id chain) sized once, so a build is a
// single pass with no per-key allocations and a probe touches at most
// two cache lines for a unique key.
//
// For build sides whose working set exceeds the cache, the same table is
// used per-partition after a radix-cluster pass (PartitionedTable),
// reusing the multi-pass machinery of internal/radix — the Figure-2
// partitioned hash join transplanted into the vectorized engine.

import (
	"repro/internal/bat"
	"repro/internal/radix"
)

// HashTable maps int64 keys to chains of int32 row ids with linear
// probing over a power-of-two slot array. Hashing is the Fibonacci
// multiplicative hash of radix.Hash; slots are taken from the *high*
// bits (the well-mixed end of a multiplicative hash).
//
// Duplicate keys share one slot: first[slot] holds the most recent row,
// and next[row] links to the previous row with the same key (-1 ends
// the chain). Iteration is therefore LIFO in insertion order.
type HashTable struct {
	keys  []int64 // slot -> key (valid where first[slot] >= 0)
	first []int32 // slot -> head row id, -1 = empty slot
	next  []int32 // row id -> previous row with same key, -1 = end
	shift uint    // 64 - log2(len(first)); Fibonacci slot = hash >> shift
	n     int     // rows inserted
}

// NewHashTable returns a table pre-sized for n rows at load factor <= ½.
func NewHashTable(n int) *HashTable {
	nslots := 8
	for nslots < 2*n {
		nslots <<= 1
	}
	shift := uint(64)
	for s := nslots; s > 1; s >>= 1 {
		shift--
	}
	t := &HashTable{
		keys:  make([]int64, nslots),
		first: make([]int32, nslots),
		next:  make([]int32, 0, n),
		shift: shift,
	}
	for i := range t.first {
		t.first[i] = -1
	}
	return t
}

// BuildHashTable builds a table over keys, with row id i for keys[i].
func BuildHashTable(keys []int64) *HashTable {
	t := NewHashTable(len(keys))
	for i, k := range keys {
		t.Insert(k, int32(i))
	}
	return t
}

// Len returns the number of rows inserted.
func (t *HashTable) Len() int { return t.n }

// Insert adds (key, row). Rows must be inserted with ids 0,1,2,... (the
// chain array grows densely); inserting beyond the pre-sized capacity
// grows the slot array by rehashing.
func (t *HashTable) Insert(key int64, row int32) {
	if 2*(t.n+1) > len(t.first) {
		t.grow()
	}
	for int(row) >= len(t.next) {
		t.next = append(t.next, -1)
	}
	s := radix.Hash(key) >> t.shift
	mask := uint64(len(t.first) - 1)
	for {
		f := t.first[s]
		if f < 0 {
			t.keys[s] = key
			t.first[s] = row
			t.next[row] = -1
			t.n++
			return
		}
		if t.keys[s] == key {
			t.next[row] = f
			t.first[s] = row
			t.n++
			return
		}
		s = (s + 1) & mask
	}
}

func (t *HashTable) grow() {
	old := t.first
	oldKeys := t.keys
	nslots := 2 * len(old)
	t.keys = make([]int64, nslots)
	t.first = make([]int32, nslots)
	for i := range t.first {
		t.first[i] = -1
	}
	t.shift--
	mask := uint64(nslots - 1)
	for os, f := range old {
		if f < 0 {
			continue
		}
		k := oldKeys[os]
		s := radix.Hash(k) >> t.shift
		for t.first[s] >= 0 {
			s = (s + 1) & mask
		}
		t.keys[s] = k
		t.first[s] = f
	}
}

// First returns the head row id of key's chain, or -1 if absent.
func (t *HashTable) First(key int64) int32 {
	s := radix.Hash(key) >> t.shift
	mask := uint64(len(t.first) - 1)
	for {
		f := t.first[s]
		if f < 0 {
			return -1
		}
		if t.keys[s] == key {
			return f
		}
		s = (s + 1) & mask
	}
}

// Next returns the row after row in its key chain, or -1 at the end.
func (t *HashTable) Next(row int32) int32 { return t.next[row] }

// ForEach calls f for every row id matching key.
func (t *HashTable) ForEach(key int64, f func(row int32)) {
	for r := t.First(key); r >= 0; r = t.next[r] {
		f(r)
	}
}

// --- radix-partitioned build ---

// partitionRows is the build-side size (in rows) beyond which JoinBuild
// switches to a radix-partitioned table: past ~2^18 rows the flat
// table's slot array leaves the L2 cache and every probe becomes a TLB
// and cache miss, which is exactly the regime §4.2's multi-pass
// radix-cluster fixes.
const partitionRows = 1 << 18

// partitionCacheBytes is the cache budget one partition's table should
// fit in (half of it, per radix.JoinBits).
const partitionCacheBytes = 1 << 21

// PartitionedTable is a radix-partitioned HashTable: build rows are
// radix-clustered on the low bits of their key hash (reusing
// radix.Cluster / radix.SplitBits), then one small HashTable is built
// per cluster over cluster-local positions. Each probe touches exactly
// one cache-sized cluster.
type PartitionedTable struct {
	clustered radix.Clustered
	tables    []*HashTable
	mask      uint64 // low-bit mask selecting the cluster
}

// BuildPartitionedTable radix-clusters (row, key) pairs on `bits` low
// hash bits in two passes and builds a per-cluster table. Row id i
// corresponds to keys[i].
func BuildPartitionedTable(keys []int64, bits int) *PartitionedTable {
	tuples := make([]radix.Tuple, len(keys))
	for i, k := range keys {
		// The OID carries the build row id through the shuffle.
		tuples[i] = radix.Tuple{OID: bat.OID(i), Val: k}
	}
	c := radix.Cluster(tuples, radix.SplitBits(bits, 2))
	p := &PartitionedTable{
		clustered: c,
		tables:    make([]*HashTable, c.NumClusters()),
		mask:      uint64(1<<c.Bits) - 1,
	}
	for i := 0; i < c.NumClusters(); i++ {
		cl := c.ClusterSlice(i)
		if len(cl) == 0 {
			continue
		}
		t := NewHashTable(len(cl))
		for j := range cl {
			t.Insert(cl[j].Val, int32(j))
		}
		p.tables[i] = t
	}
	return p
}

// ForEach calls f with the global build row id of every match for key.
func (p *PartitionedTable) ForEach(key int64, f func(row int32)) {
	ci := int(radix.Hash(key) & p.mask)
	t := p.tables[ci]
	if t == nil {
		return
	}
	cl := p.clustered.ClusterSlice(ci)
	for r := t.First(key); r >= 0; r = t.next[r] {
		f(int32(cl[r].OID))
	}
}
