package coopscan

import "testing"

var testDisk = Disk{NPages: 400, FetchNS: 10000, PageCPUNS: 100}

func TestSingleQueryBothPoliciesEqual(t *testing.T) {
	lru := RunLRU(testDisk, 1, 100, 0)
	coop := RunCooperative(testDisk, 1, 100, 0)
	if lru.Fetches != testDisk.NPages || coop.Fetches != testDisk.NPages {
		t.Fatalf("single scan must fetch every page once: lru=%d coop=%d",
			lru.Fetches, coop.Fetches)
	}
}

func TestEveryQuerySeesWholeTable(t *testing.T) {
	for _, run := range []func(Disk, int, int, int) Stats{RunLRU, RunCooperative} {
		st := run(testDisk, 4, 100, 37)
		if st.Delivered != 4*testDisk.NPages {
			t.Fatalf("page deliveries = %d, want %d", st.Delivered, 4*testDisk.NPages)
		}
		for q, ns := range st.PerQueryNS {
			if ns <= 0 {
				t.Fatalf("query %d never finished", q)
			}
		}
	}
}

func TestCooperativeSharesFetches(t *testing.T) {
	// 8 concurrent scans, table 4x the buffer: classical LRU with staggered
	// cursors thrashes; cooperative delivery shares each fetched page among
	// all 8 queries, approaching NPages total fetches.
	lru := RunLRU(testDisk, 8, 100, 50)
	coop := RunCooperative(testDisk, 8, 100, 50)
	if coop.Fetches > lru.Fetches/2 {
		t.Fatalf("coop fetches = %d, lru = %d: expected >2x reduction",
			coop.Fetches, lru.Fetches)
	}
	if coop.Fetches < testDisk.NPages {
		t.Fatalf("coop fetched %d < table size %d: impossible", coop.Fetches, testDisk.NPages)
	}
	if coop.TotalNS >= lru.TotalNS {
		t.Fatalf("coop time %.0f should beat lru %.0f", coop.TotalNS, lru.TotalNS)
	}
}

func TestUnstaggeredLRUAlreadyShares(t *testing.T) {
	// With perfectly aligned cursors (stagger 0), LRU queries move in
	// lockstep and share pages, so cooperation gains little — the paper's
	// point is that real arrivals are NOT aligned.
	lru := RunLRU(testDisk, 4, 100, 0)
	if lru.Fetches != testDisk.NPages {
		t.Fatalf("lockstep LRU fetches = %d, want %d", lru.Fetches, testDisk.NPages)
	}
}

func TestStaggerHurtsLRU(t *testing.T) {
	aligned := RunLRU(testDisk, 4, 100, 0)
	staggered := RunLRU(testDisk, 4, 100, 150)
	if staggered.Fetches <= aligned.Fetches {
		t.Fatalf("staggered (%d) should fetch more than aligned (%d)",
			staggered.Fetches, aligned.Fetches)
	}
}

func TestLRUPoolEviction(t *testing.T) {
	p := newLRUPool(2)
	p.touch(1)
	p.touch(2)
	p.touch(1) // 2 becomes LRU
	p.touch(3) // evicts 2
	if p.resident(2) {
		t.Fatal("2 should be evicted")
	}
	if !p.resident(1) || !p.resident(3) {
		t.Fatal("1 and 3 should be resident")
	}
}

func TestMoreQueriesDoNotIncreaseCoopFetchesMuch(t *testing.T) {
	f2 := RunCooperative(testDisk, 2, 100, 50).Fetches
	f16 := RunCooperative(testDisk, 16, 100, 50).Fetches
	if f16 > f2*2 {
		t.Fatalf("coop fetches should stay near table size: 2q=%d 16q=%d", f2, f16)
	}
}

func BenchmarkLRU8Queries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunLRU(testDisk, 8, 100, 50)
	}
}

func BenchmarkCooperative8Queries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunCooperative(testDisk, 8, 100, 50)
	}
}
