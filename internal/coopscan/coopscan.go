// Package coopscan implements the X100 buffer manager experiment of §5:
// cooperative scans ([45]) against a classical LRU buffer pool. With
// classical buffering, concurrent scan queries compete for I/O bandwidth,
// each dragging its own sequential pass over the table through the pool.
// A cooperative scheduler (the Active Buffer Manager) instead chooses which
// page to load next based on which *queries* still need it, letting
// concurrent scans share fetched pages regardless of their logical order —
// synergy rather than competition.
//
// The disk is simulated (DESIGN.md §3): a page fetch costs FetchNS of
// simulated time on a single I/O channel; CPU cost per page is PageCPUNS.
package coopscan

import "container/list"

// Disk describes the simulated table storage.
type Disk struct {
	NPages    int
	FetchNS   float64 // time per page fetch on the single I/O channel
	PageCPUNS float64 // per-query processing time per page
}

// Stats reports a simulation run.
type Stats struct {
	Fetches    int     // pages fetched from disk
	BufferHits int     // pages served from the pool
	Delivered  int     // query-page deliveries (a fetch may serve many queries)
	TotalNS    float64 // simulated wall-clock (I/O serialized + CPU overlap)
	// PerQueryNS is each query's completion time.
	PerQueryNS []float64
}

// lruPool is a classical page pool with LRU replacement.
type lruPool struct {
	cap   int
	ll    *list.List // front = MRU; values are page numbers
	where map[int]*list.Element
}

func newLRUPool(capacity int) *lruPool {
	return &lruPool{cap: capacity, ll: list.New(), where: map[int]*list.Element{}}
}

// touch returns whether the page was resident, inserting it either way.
func (p *lruPool) touch(page int) bool {
	if e, ok := p.where[page]; ok {
		p.ll.MoveToFront(e)
		return true
	}
	if p.ll.Len() >= p.cap {
		back := p.ll.Back()
		delete(p.where, back.Value.(int))
		p.ll.Remove(back)
	}
	p.where[page] = p.ll.PushFront(page)
	return false
}

func (p *lruPool) resident(page int) bool {
	_, ok := p.where[page]
	return ok
}

// RunLRU simulates nQueries concurrent full-table scans through an LRU
// pool of bufPages pages. Queries advance round-robin, one page per turn —
// the fair scheduling a traditional buffer manager provides. Staggered
// start positions (stagger pages apart) model queries arriving while
// others are mid-scan.
func RunLRU(d Disk, nQueries, bufPages, stagger int) Stats {
	pool := newLRUPool(bufPages)
	cursor := make([]int, nQueries) // pages consumed so far
	start := make([]int, nQueries)
	for q := range start {
		start[q] = (q * stagger) % d.NPages
	}
	st := Stats{PerQueryNS: make([]float64, nQueries)}
	var clock float64
	remaining := nQueries
	for remaining > 0 {
		progressed := false
		for q := 0; q < nQueries; q++ {
			if cursor[q] >= d.NPages {
				continue
			}
			progressed = true
			page := (start[q] + cursor[q]) % d.NPages
			if pool.touch(page) {
				st.BufferHits++
			} else {
				st.Fetches++
				clock += d.FetchNS
			}
			clock += d.PageCPUNS
			st.Delivered++
			cursor[q]++
			if cursor[q] >= d.NPages {
				st.PerQueryNS[q] = clock
				remaining--
			}
		}
		if !progressed {
			break
		}
	}
	st.TotalNS = clock
	return st
}

// RunCooperative simulates the same workload under the relevance-based
// cooperative policy: at each step the scheduler delivers the page wanted
// by the most unfinished queries, preferring already-resident pages, and
// all queries wanting it consume it at once (scans need not be in order).
func RunCooperative(d Disk, nQueries, bufPages, stagger int) Stats {
	pool := newLRUPool(bufPages)
	need := make([][]bool, nQueries)
	left := make([]int, nQueries)
	for q := range need {
		need[q] = make([]bool, d.NPages)
		for p := range need[q] {
			need[q][p] = true
		}
		left[q] = d.NPages
		_ = stagger // arrival order is irrelevant: relevance drives delivery
	}
	st := Stats{PerQueryNS: make([]float64, nQueries)}
	var clock float64
	remaining := nQueries
	for remaining > 0 {
		// Pick the most relevant page: highest number of queries needing
		// it; ties broken toward resident pages, then lowest page number.
		bestPage, bestScore, bestRes := -1, -1, false
		for p := 0; p < d.NPages; p++ {
			score := 0
			for q := 0; q < nQueries; q++ {
				if left[q] > 0 && need[q][p] {
					score++
				}
			}
			if score == 0 {
				continue
			}
			res := pool.resident(p)
			better := score > bestScore ||
				(score == bestScore && res && !bestRes)
			if better {
				bestPage, bestScore, bestRes = p, score, res
			}
		}
		if bestPage < 0 {
			break
		}
		if pool.touch(bestPage) {
			st.BufferHits++
		} else {
			st.Fetches++
			clock += d.FetchNS
		}
		for q := 0; q < nQueries; q++ {
			if left[q] > 0 && need[q][bestPage] {
				need[q][bestPage] = false
				left[q]--
				clock += d.PageCPUNS
				st.Delivered++
				if left[q] == 0 {
					st.PerQueryNS[q] = clock
					remaining--
				}
			}
		}
	}
	st.TotalNS = clock
	return st
}
