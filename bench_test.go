package repro_test

// One benchmark per experiment of DESIGN.md §2. Each regenerates the core
// measurement of the corresponding E-table; run the cmd/experiments binary
// for the full formatted tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/batalg"
	"repro/internal/ccindex"
	"repro/internal/compress"
	"repro/internal/coopscan"
	"repro/internal/costmodel"
	"repro/internal/crack"
	"repro/internal/cyclotron"
	"repro/internal/datacell"
	"repro/internal/layout"
	"repro/internal/radix"
	"repro/internal/recycler"
	"repro/internal/simhw"
	"repro/internal/vector"
	"repro/internal/volcano"
	"repro/internal/workload"
)

// --- E1: positional lookup vs B-tree ---

func BenchmarkE1PositionalVsBTree(b *testing.B) {
	n := 1 << 20
	col := bat.FromInts(make([]int64, n))
	bt := ccindex.NewBTree(64)
	for i := 0; i < n; i++ {
		bt.Insert(int64(i), int64(i))
	}
	r := rand.New(rand.NewSource(1))
	probes := make([]int, 4096)
	for i := range probes {
		probes[i] = r.Intn(n)
	}
	b.Run("positional", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += col.IntAt(probes[i&4095])
		}
		_ = sink
	})
	b.Run("btree", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			v, _ := bt.Get(int64(probes[i&4095]))
			sink += v
		}
		_ = sink
	})
}

// --- E2: Volcano vs BAT algebra ---

func BenchmarkE2VolcanoVsBAT(b *testing.B) {
	n := 1 << 20
	vals := workload.UniformInts(n, 1000, 2)
	rows := make([]volcano.Row, n)
	for i, v := range vals {
		rows[i] = volcano.Row{v}
	}
	tab := &volcano.Table{Columns: []string{"v"}, Rows: rows}
	col := bat.FromInts(vals)
	b.Run("volcano", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			it := &volcano.HashAgg{
				Child: &volcano.SelectOp{
					Child: volcano.NewScan(tab),
					Pred:  volcano.BinOp{Op: volcano.OpLt, L: volcano.Col{Idx: 0}, R: volcano.Const{V: int64(500)}},
				},
				Aggs: []volcano.AggSpec{{Kind: volcano.AggSum, Arg: volcano.Col{Idx: 0}}},
			}
			if _, err := volcano.Drain(it); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cand := batalg.ThetaSelect(col, batalg.CmpLT, 500)
			batalg.Sum(batalg.LeftFetchJoin(cand, col))
		}
	})
}

// --- E3: radix cluster passes and joins ---

func BenchmarkE3ClusterPasses(b *testing.B) {
	n := 1 << 18
	tuples := make([]radix.Tuple, n)
	r := rand.New(rand.NewSource(3))
	for i := range tuples {
		tuples[i] = radix.Tuple{OID: bat.OID(i), Val: r.Int63()}
	}
	for _, passes := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("B=12/P=%d", passes), func(b *testing.B) {
			pb := radix.SplitBits(12, passes)
			for i := 0; i < b.N; i++ {
				radix.Cluster(tuples, pb)
			}
		})
	}
}

func BenchmarkE3RadixJoin(b *testing.B) {
	n := 1 << 20
	lv := workload.UniformInts(n, int64(n), 4)
	rv := workload.UniformInts(n, int64(n), 5)
	l := make([]radix.Tuple, n)
	r := make([]radix.Tuple, n)
	for i := 0; i < n; i++ {
		l[i] = radix.Tuple{OID: bat.OID(i), Val: lv[i]}
		r[i] = radix.Tuple{OID: bat.OID(i), Val: rv[i]}
	}
	b.Run("simple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			radix.SimpleHashJoin(l, r)
		}
	})
	bits := radix.JoinBits(n, 512<<10)
	b.Run("partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			radix.PartitionedHashJoin(l, r, radix.SplitBits(bits, 2))
		}
	})
}

// --- E4: projection strategies ---

func BenchmarkE4Projection(b *testing.B) {
	n := 1 << 20
	col := bat.FromInts(workload.UniformInts(n, 1<<40, 6))
	r := rand.New(rand.NewSource(7))
	pairs := make([]radix.OIDPair, n)
	for i := range pairs {
		pairs[i] = radix.OIDPair{L: bat.OID(i), R: bat.OID(r.Intn(n))}
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			radix.NaiveFetch(pairs, col)
		}
	})
	b.Run("decluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			radix.Decluster(pairs, col, 1024)
		}
	})
}

// --- E5: cost model evaluation speed (the accuracy check lives in
// internal/costmodel's tests) ---

func BenchmarkE5Patterns(b *testing.B) {
	h := simhw.Default()
	pats := []costmodel.Pattern{
		costmodel.SeqTraverse{Bytes: 1 << 24, N: 1 << 21},
		costmodel.RandTraverse{Bytes: 1 << 24, N: 1 << 20},
		costmodel.Scatter{Regions: 1 << 12, Bytes: 1 << 24, N: 1 << 20},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pats {
			costmodel.Predict(h, p)
		}
	}
}

// --- E6: vector size sweep ---

func BenchmarkE6VectorSize(b *testing.B) {
	n := 1 << 20
	vals := workload.UniformInts(n, 1000, 8)
	src, err := vector.NewSource([]string{"v"}, []vector.Col{{Kind: vector.KindInt, Ints: vals}})
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1, 128, 1024, n} {
		name := fmt.Sprintf("size=%d", size)
		if size == n {
			name = "size=full"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan := &vector.Agg{
					Child: &vector.Filter{
						Child: vector.NewScan(src, size),
						Preds: []vector.Pred{{ColIdx: 0, Op: vector.PredLt, IntVal: 500}},
					},
					KeyCol: -1,
					Aggs:   []vector.AggSpec{{Kind: vector.AggSumInt, Col: 0}},
				}
				if _, err := vector.Drain(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- join build structures: GC'd Go map vs flat open-addressing table ---

// BenchmarkJoinTable isolates the build+probe cost the hash-join rides
// on: the old map[int64][]int32 (one slice header + backing array per
// distinct key, pointer chase per bucket) against vector.HashTable
// (three flat arrays, linear probing, no per-key allocations).
func BenchmarkJoinTable(b *testing.B) {
	n := 1 << 20
	keys := workload.UniformInts(n, int64(n), 21)
	probes := workload.UniformInts(n, int64(n), 22)
	b.Run("gomap/build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := make(map[int64][]int32)
			for r, k := range keys {
				m[k] = append(m[k], int32(r))
			}
		}
	})
	b.Run("openaddr/build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vector.BuildHashTable(keys)
		}
	})
	m := make(map[int64][]int32)
	for r, k := range keys {
		m[k] = append(m[k], int32(r))
	}
	ht := vector.BuildHashTable(keys)
	b.Run("gomap/probe", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			for _, k := range probes {
				for _, r := range m[k] {
					sink += int64(r)
				}
			}
		}
		_ = sink
	})
	b.Run("openaddr/probe", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			for _, k := range probes {
				for r := ht.First(k); r >= 0; r = ht.Next(r) {
					sink += int64(r)
				}
			}
		}
		_ = sink
	})
}

// --- E7: compression ---

func BenchmarkE7Compression(b *testing.B) {
	n := 1 << 18
	uniform := workload.UniformInts(n, 256, 9)
	sorted := workload.SortedInts(n, 3, 10)
	dst := make([]int64, n)
	pfor := compress.CompressPFOR(uniform)
	pford := compress.CompressPFORDelta(sorted)
	pdict := compress.CompressPDICT(workload.ZipfInts(n, 64, 1.5, 11))
	b.Run("pfor", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			pfor.Decompress(dst)
		}
	})
	b.Run("pfordelta", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			pford.Decompress(dst)
		}
	})
	b.Run("pdict", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			pdict.Decompress(dst)
		}
	})
}

// --- E8: cooperative scans ---

func BenchmarkE8CoopScan(b *testing.B) {
	d := coopscan.Disk{NPages: 800, FetchNS: 10000, PageCPUNS: 200}
	b.Run("lru", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coopscan.RunLRU(d, 8, 200, 123)
		}
	})
	b.Run("cooperative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coopscan.RunCooperative(d, 8, 200, 123)
		}
	})
}

// --- E9: cracking ---

func BenchmarkE9Cracking(b *testing.B) {
	n := 1 << 20
	col := bat.FromInts(workload.UniformInts(n, 1<<20, 12))
	queries := workload.CrackQueries(500, 1<<20, 0.001, 0, 13)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries[:20] {
				crack.ScanBaseline(col, q.Lo, q.Hi)
			}
		}
	})
	b.Run("fullsort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			si := crack.NewSorted(col)
			for _, q := range queries {
				si.RangeOIDs(q.Lo, q.Hi)
			}
		}
	})
	b.Run("cracking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := crack.New(col)
			for _, q := range queries {
				ix.RangeOIDs(q.Lo, q.Hi)
			}
		}
	})
	b.Run("cracking3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := crack.New(col)
			ix.CrackInThree = true
			for _, q := range queries {
				ix.RangeOIDs(q.Lo, q.Hi)
			}
		}
	})
}

// --- E10: recycler ---

func BenchmarkE10Recycler(b *testing.B) {
	n := 1 << 18
	col := bat.FromInts(workload.UniformInts(n, 1<<20, 14))
	log := workload.SkyserverLog(200, 1, 1<<20, 0.6, 15)
	run := func(rc *recycler.Cache) {
		for _, q := range log {
			key := recycler.Key(fmt.Sprintf("r(%d,%d)", q.Lo, q.Hi))
			if rc != nil {
				if _, ok := rc.Lookup(key); ok {
					continue
				}
			}
			cand := batalg.RangeSelect(col, q.Lo, q.Hi, true, false)
			if rc != nil {
				rc.Add(key, cand, 1e6, []string{"c"})
			}
		}
	}
	b.Run("norecycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(nil)
		}
	})
	b.Run("recycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(recycler.New(64<<20, recycler.PolicyBenefit))
		}
	})
}

// --- E11: index structures ---

func BenchmarkE11Trees(b *testing.B) {
	n := 1 << 20
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 2
	}
	bt := ccindex.NewBTree(16)
	for i, k := range keys {
		bt.Insert(k, int64(i))
	}
	css := ccindex.BuildCSS(keys, 8)
	csb := ccindex.BuildCSB(keys, 8)
	r := rand.New(rand.NewSource(16))
	probes := make([]int64, 4096)
	for i := range probes {
		probes[i] = int64(r.Intn(n)) * 2
	}
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ccindex.BinarySearch(keys, probes[i&4095])
		}
	})
	b.Run("btree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bt.Get(probes[i&4095])
		}
	})
	b.Run("css", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			css.Search(probes[i&4095])
		}
	})
	b.Run("csb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csb.Search(probes[i&4095])
		}
	})
}

// --- E12: layouts ---

func BenchmarkE12Layouts(b *testing.B) {
	rows, cols := 1<<20, 8
	fill := func(r, c int) int64 { return int64(r + c) }
	rels := map[string]layout.Relation{
		"nsm": layout.NewNSM(rows, cols, fill),
		"dsm": layout.NewDSM(rows, cols, fill),
		"pax": layout.NewPAX(rows, cols, 512, fill),
	}
	r := rand.New(rand.NewSource(17))
	idx := make([]int, 1<<14)
	for i := range idx {
		idx[i] = r.Intn(rows)
	}
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for name, rel := range rels {
		b.Run("scan1col/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel.ScanSum([]int{3})
			}
		})
		b.Run("gather8col/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel.GatherSum(idx, all)
			}
		})
	}
}

// --- E13: DataCell ---

func BenchmarkE13DataCell(b *testing.B) {
	nEvents := 1 << 17
	queries := make([]datacell.Query, 32)
	for i := range queries {
		queries[i] = datacell.Query{ID: i, Lo: int64(i * 3), Hi: int64(i*3 + 30), Window: nEvents}
	}
	r := rand.New(rand.NewSource(18))
	events := make([]datacell.Event, nEvents)
	for i := range events {
		events[i] = datacell.Event{TS: int64(i), Key: r.Int63n(100), Val: r.Int63n(1000)}
	}
	b.Run("perevent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := datacell.NewPerEventEngine(queries)
			for _, ev := range events {
				e.Push(ev)
			}
			e.Flush()
		}
	})
	b.Run("basket4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := datacell.NewEngine(4096, queries)
			if err != nil {
				b.Fatal(err)
			}
			for _, ev := range events {
				e.Push(ev)
			}
			e.Flush()
		}
	})
}

// --- E15: morsel-parallel pipeline scaling ---

// BenchmarkE15ParallelScaling measures the morsel-driven Exchange: TPC-H
// Q6 and a shared-build join probe at 1/2/4/8 workers. rows/sec is the
// headline metric; on a single-core host the >1 worker runs only pay
// the exchange overhead (see BENCH_pr1.json for recorded numbers).
func BenchmarkE15ParallelScaling(b *testing.B) {
	n := 1 << 20
	li := workload.GenLineItem(n, 20)
	q6src, err := vector.NewSource([]string{"q", "p", "d"}, []vector.Col{
		{Kind: vector.KindInt, Ints: li.Quantity},
		{Kind: vector.KindFloat, Floats: li.Price},
		{Kind: vector.KindFloat, Floats: li.Discount}})
	if err != nil {
		b.Fatal(err)
	}

	nb := 1 << 18
	build, err := vector.NewSource([]string{"k"},
		[]vector.Col{{Kind: vector.KindInt, Ints: workload.UniformInts(nb, int64(nb), 23)}})
	if err != nil {
		b.Fatal(err)
	}
	probe, err := vector.NewSource([]string{"k"},
		[]vector.Col{{Kind: vector.KindInt, Ints: workload.UniformInts(n, int64(nb), 24)}})
	if err != nil {
		b.Fatal(err)
	}
	jb, err := vector.BuildJoinTable(vector.NewScan(build, 0), 0, nil, false)
	if err != nil {
		b.Fatal(err)
	}

	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("q6/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vector.ParallelQ6(q6src, w, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
		b.Run(fmt.Sprintf("join/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vector.ParallelJoinCount(jb, probe, 0, w, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// --- E14: DataCyclotron ---

func BenchmarkE14Cyclotron(b *testing.B) {
	cfg := cyclotron.Config{Nodes: 16, Partitions: 64,
		HopNS: 500, MsgNS: 5000, TransferNS: 4000, ProcessNS: 1000}
	b.Run("ring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cyclotron.RunCyclotron(cfg, 10000, 1)
		}
	})
	b.Run("reqresp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cyclotron.RunRequestResponse(cfg, 10000, 1)
		}
	})
}
