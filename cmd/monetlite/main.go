// Command monetlite is an interactive SQL shell over the public engine
// API: statements are prepared (parsed + compiled once), results stream
// through a cursor, and a running query can be canceled with Ctrl-C.
//
// Usage:
//
//	monetlite                 # interactive shell on stdin
//	monetlite -e 'SQL'        # run one statement and exit
//	monetlite -f file         # run a script of semicolon-separated statements
//	monetlite -d dir          # persist the database in dir (WAL + recovery)
//	monetlite -recycle        # enable the intermediate-result recycler
//	monetlite -connect host:p # drive a remote monetlited instead of a local DB
//
// Shell extras: \q quits, \t lists tables, \plan SQL shows how a SELECT
// would execute (vectorized pipeline or MAL program), \checkpoint
// forces a checkpoint (atomic save + WAL truncate) of a -d database,
// and \vacuum merges delete tombstones so tables re-qualify for the
// vectorized path. With -connect, \t and \plan go over the wire;
// \checkpoint and \vacuum are server-side concerns and report so.
//
// SIGTERM cancels the in-flight statement, waits briefly for the
// session to unwind, then runs the deferred Close — so a -d database
// checkpoints instead of relying on crash recovery — and exits with the
// conventional 143 (128+SIGTERM). With -connect, Ctrl-C sends a Cancel
// frame so the server stops the query at its next morsel boundary.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/client"
	"repro/engine"
)

func main() {
	// All exits funnel through realMain's return so the deferred
	// db.Close() (which CHECKPOINTS a -d database) always runs — os.Exit
	// in the middle of main would skip the checkpoint and leave the
	// session's tail in the WAL for recovery to replay.
	os.Exit(realMain())
}

// shellRows is the cursor surface the printing loop needs; engine.Rows
// and client.Rows both satisfy it as-is.
type shellRows interface {
	Columns() []string
	Next() bool
	Scan(dest ...any) error
	Err() error
	Close() error
}

// shellStmt is one prepared statement, local or remote.
type shellStmt interface {
	IsQuery() bool
	Exec(ctx context.Context) (int64, error)
	Query(ctx context.Context) (shellRows, error)
	Close() error
}

// shellConn is what the REPL drives: a local engine session or a
// remote monetlited connection.
type shellConn interface {
	Prepare(sql string) (shellStmt, error)
	Plan(sql string) (string, error)
	Tables() ([]string, error)
	Checkpoint() (string, error)
	Vacuum() (string, error)
}

// --- local backend: engine API in-process ---

type localShell struct {
	db   *engine.DB
	conn *engine.Conn
}

type localStmt struct{ st *engine.Stmt }

func (l *localShell) Prepare(sql string) (shellStmt, error) {
	st, err := l.conn.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return localStmt{st}, nil
}

func (l *localShell) Plan(sql string) (string, error) { return l.conn.Plan(sql) }

func (l *localShell) Tables() ([]string, error) { return l.db.Tables(), nil }

func (l *localShell) Checkpoint() (string, error) {
	if err := l.db.Checkpoint(); err != nil {
		return "", err
	}
	return "ok", nil
}

func (l *localShell) Vacuum() (string, error) {
	n, err := l.db.Vacuum()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("ok, %d tables vacuumed", n), nil
}

func (s localStmt) IsQuery() bool { return s.st.IsQuery() }

func (s localStmt) Exec(ctx context.Context) (int64, error) {
	res, err := s.st.Exec(ctx)
	return res.RowsAffected, err
}

func (s localStmt) Query(ctx context.Context) (shellRows, error) {
	rows, err := s.st.Query(ctx)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func (s localStmt) Close() error { return s.st.Close() }

// --- remote backend: monetlited over the wire ---

type remoteShell struct{ c *client.Client }

type remoteStmt struct{ st *client.Stmt }

func (r *remoteShell) Prepare(sql string) (shellStmt, error) {
	st, err := r.c.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return remoteStmt{st}, nil
}

func (r *remoteShell) Plan(sql string) (string, error) { return r.c.Plan(sql) }

func (r *remoteShell) Tables() ([]string, error) { return r.c.Tables() }

func (r *remoteShell) Checkpoint() (string, error) {
	return "", fmt.Errorf(`\checkpoint is not available over -connect; the server checkpoints on shutdown`)
}

func (r *remoteShell) Vacuum() (string, error) {
	return "", fmt.Errorf(`\vacuum is not available over -connect`)
}

func (s remoteStmt) IsQuery() bool { return s.st.IsQuery() }

func (s remoteStmt) Exec(ctx context.Context) (int64, error) { return s.st.Exec(ctx) }

func (s remoteStmt) Query(ctx context.Context) (shellRows, error) {
	rows, err := s.st.Query(ctx)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func (s remoteStmt) Close() error { return s.st.Close() }

func realMain() (code int) {
	exec := flag.String("e", "", "execute one statement and exit")
	file := flag.String("f", "", "execute a script file")
	dir := flag.String("d", "", "persist the database in this directory")
	recycle := flag.Bool("recycle", false, "enable the intermediate-result recycler")
	connect := flag.String("connect", "", "connect to a monetlited server at host:port instead of opening a local database")
	flag.Parse()

	var sh shellConn
	if *connect != "" {
		if *dir != "" || *recycle {
			fmt.Fprintln(os.Stderr, "error: -d and -recycle configure a local database and cannot be combined with -connect")
			return 1
		}
		cl, err := client.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		defer func() {
			if err := cl.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "error: close:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
		if b := cl.Banner(); b != "" {
			fmt.Fprintln(os.Stderr, "connected:", b)
		}
		sh = &remoteShell{c: cl}
	} else {
		var opts []engine.Option
		if *dir != "" {
			opts = append(opts, engine.WithDir(*dir))
		}
		if *recycle {
			opts = append(opts, engine.WithRecycler(256<<20))
		}
		db, err := engine.Open(opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		// Close CHECKPOINTS a -d database; if that fails (e.g. a poisoned
		// WAL after a failed fsync) the on-disk state is behind what the
		// session acknowledged, and the shell must say so in its exit code —
		// silently discarding the error would report durability we don't
		// have. The session's own exit code wins when it is already nonzero.
		defer func() {
			if closeDB(db) != nil && code == 0 {
				code = 1
			}
		}()
		sh = &localShell{db: db, conn: db.Conn()}
	}

	// SIGTERM (kill, systemd stop, container shutdown) must exit like a
	// clean \q — through the deferred Close, which checkpoints a -d
	// database — not by dying mid-write and leaning on WAL recovery.
	// The session body runs in a goroutine so this select can win; its
	// statements run under ctx, so the signal first CANCELS any in-flight
	// statement (observed at morsel boundaries — locally via the engine,
	// remotely via a Cancel frame) and gives the session a moment to
	// unwind before the deferred close runs. A session stuck past the
	// grace period (e.g. blocked reading stdin) is abandoned — the close
	// still runs, and exec-path statements are already canceled. Exit
	// code is the conventional 128+15 for a SIGTERM run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigterm := make(chan os.Signal, 1)
	signal.Notify(sigterm, syscall.SIGTERM)
	done := make(chan int, 1)
	go func() { done <- session(ctx, sh, *exec, *file) }()
	select {
	case c := <-done:
		return c
	case <-sigterm:
		fmt.Fprintln(os.Stderr, "terminated; closing")
		cancel()
		select {
		case <-done:
		case <-time.After(3 * time.Second):
			fmt.Fprintln(os.Stderr, "session did not unwind; closing anyway")
		}
		return 143
	}
}

// session runs the -e / -f / interactive body and returns the exit
// code. ctx is the process-lifetime context: SIGTERM cancels it, which
// aborts the running statement at morsel granularity.
func session(ctx context.Context, sh shellConn, exec, file string) int {
	if exec != "" {
		if err := run(ctx, sh, exec); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		return 0
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		for _, stmt := range splitStatements(string(data)) {
			if err := run(ctx, sh, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
		}
		return 0
	}

	// Interactive: ignore SIGINT at the idle prompt (a stray Ctrl-C
	// must not kill the shell before the deferred Close saves a -d
	// database); run() re-arms it per statement to cancel the query.
	signal.Ignore(os.Interrupt)
	fmt.Println("monetlite shell — \\q to quit, \\t for tables, \\plan SQL for plans, \\checkpoint, \\vacuum; Ctrl-C cancels the running query")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("sql> ")
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == `\q`:
			return 0
		case strings.TrimSpace(line) == `\t`:
			tables, err := sh.Tables()
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			for _, t := range tables {
				fmt.Println(" ", t)
			}
			fmt.Print("sql> ")
			continue
		case strings.TrimSpace(line) == `\checkpoint`:
			msg, err := sh.Checkpoint()
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println(msg)
			}
			fmt.Print("sql> ")
			continue
		case strings.TrimSpace(line) == `\vacuum`:
			msg, err := sh.Vacuum()
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println(msg)
			}
			fmt.Print("sql> ")
			continue
		case strings.HasPrefix(strings.TrimSpace(line), `\plan `):
			sql := strings.TrimPrefix(strings.TrimSpace(line), `\plan `)
			plan, err := sh.Plan(sql)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println(plan)
			}
			fmt.Print("sql> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			for _, stmt := range splitStatements(buf.String()) {
				if err := run(ctx, sh, stmt); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				}
			}
			buf.Reset()
			fmt.Print("sql> ")
		}
	}
	return 0
}

// closeDB closes db, reporting a failed close — a failed checkpoint on
// a -d database — to stderr and returning the error so realMain can
// turn it into a nonzero exit.
func closeDB(db *engine.DB) error {
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "error: close:", err)
		return err
	}
	return nil
}

func splitStatements(src string) []string {
	var out []string
	for _, s := range strings.Split(src, ";") {
		if strings.TrimSpace(s) != "" {
			out = append(out, s)
		}
	}
	return out
}

// run prepares and executes one statement; SELECT results stream
// through the cursor row by row. Ctrl-C cancels the statement (checked
// at morsel boundaries in the parallel pipeline; with -connect the
// cancellation crosses the wire as a Cancel frame) without killing the
// shell; SIGTERM cancels it through the parent context.
func run(parent context.Context, sh shellConn, sql string) error {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt)
	defer stop()

	stmt, err := sh.Prepare(sql)
	if err != nil {
		return err
	}
	defer stmt.Close()

	if !stmt.IsQuery() {
		n, err := stmt.Exec(ctx)
		if err != nil {
			return err
		}
		if n > 0 {
			fmt.Printf("ok, %d rows affected\n", n)
		} else {
			fmt.Println("ok")
		}
		return nil
	}

	rows, err := stmt.Query(ctx)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols := rows.Columns()
	fmt.Println("| " + strings.Join(cols, " | ") + " |")
	n := 0
	cells := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range cells {
		ptrs[i] = &cells[i]
	}
	for rows.Next() {
		parts := make([]string, len(cols))
		if err := rows.Scan(ptrs...); err != nil {
			return err
		}
		for i, v := range cells {
			if v == nil {
				parts[i] = "<nil>"
			} else {
				parts[i] = fmt.Sprint(v)
			}
		}
		fmt.Println("| " + strings.Join(parts, " | ") + " |")
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d rows)\n", n)
	return nil
}
