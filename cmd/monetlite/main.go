// Command monetlite is an interactive SQL shell over the public engine
// API: statements are prepared (parsed + compiled once), results stream
// through a cursor, and a running query can be canceled with Ctrl-C.
//
// Usage:
//
//	monetlite            # interactive shell on stdin
//	monetlite -e 'SQL'   # run one statement and exit
//	monetlite -f file    # run a script of semicolon-separated statements
//	monetlite -d dir     # persist the database in dir (WAL + recovery)
//	monetlite -recycle   # enable the intermediate-result recycler
//
// Shell extras: \q quits, \t lists tables, \plan SQL shows how a SELECT
// would execute (vectorized pipeline or MAL program), \checkpoint
// forces a checkpoint (atomic save + WAL truncate) of a -d database,
// and \vacuum merges delete tombstones so tables re-qualify for the
// vectorized path.
//
// SIGTERM cancels the in-flight statement, waits briefly for the
// session to unwind, then runs the deferred Close — so a -d database
// checkpoints instead of relying on crash recovery — and exits with the
// conventional 143 (128+SIGTERM).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/engine"
)

func main() {
	// All exits funnel through realMain's return so the deferred
	// db.Close() (which CHECKPOINTS a -d database) always runs — os.Exit
	// in the middle of main would skip the checkpoint and leave the
	// session's tail in the WAL for recovery to replay.
	os.Exit(realMain())
}

func realMain() (code int) {
	exec := flag.String("e", "", "execute one statement and exit")
	file := flag.String("f", "", "execute a script file")
	dir := flag.String("d", "", "persist the database in this directory")
	recycle := flag.Bool("recycle", false, "enable the intermediate-result recycler")
	flag.Parse()

	var opts []engine.Option
	if *dir != "" {
		opts = append(opts, engine.WithDir(*dir))
	}
	if *recycle {
		opts = append(opts, engine.WithRecycler(256<<20))
	}
	db, err := engine.Open(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	// Close CHECKPOINTS a -d database; if that fails (e.g. a poisoned
	// WAL after a failed fsync) the on-disk state is behind what the
	// session acknowledged, and the shell must say so in its exit code —
	// silently discarding the error would report durability we don't
	// have. The session's own exit code wins when it is already nonzero.
	defer func() {
		if closeDB(db) != nil && code == 0 {
			code = 1
		}
	}()
	conn := db.Conn()

	// SIGTERM (kill, systemd stop, container shutdown) must exit like a
	// clean \q — through the deferred Close, which checkpoints a -d
	// database — not by dying mid-write and leaning on WAL recovery.
	// The session body runs in a goroutine so this select can win; its
	// statements run under ctx, so the signal first CANCELS any in-flight
	// statement (observed at morsel boundaries) and gives the session a
	// moment to unwind before Close checkpoints underneath it. A session
	// stuck past the grace period (e.g. blocked reading stdin) is
	// abandoned — Close still runs, and exec-path statements are already
	// canceled. Exit code is the conventional 128+15 for a SIGTERM run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigterm := make(chan os.Signal, 1)
	signal.Notify(sigterm, syscall.SIGTERM)
	done := make(chan int, 1)
	go func() { done <- session(ctx, db, conn, *exec, *file) }()
	select {
	case c := <-done:
		return c
	case <-sigterm:
		fmt.Fprintln(os.Stderr, "terminated; closing database")
		cancel()
		select {
		case <-done:
		case <-time.After(3 * time.Second):
			fmt.Fprintln(os.Stderr, "session did not unwind; closing anyway")
		}
		return 143
	}
}

// session runs the -e / -f / interactive body and returns the exit
// code. ctx is the process-lifetime context: SIGTERM cancels it, which
// aborts the running statement at morsel granularity.
func session(ctx context.Context, db *engine.DB, conn *engine.Conn, exec, file string) int {
	if exec != "" {
		if err := run(ctx, conn, exec); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		return 0
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		for _, stmt := range splitStatements(string(data)) {
			if err := run(ctx, conn, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
		}
		return 0
	}

	// Interactive: ignore SIGINT at the idle prompt (a stray Ctrl-C
	// must not kill the shell before the deferred Close saves a -d
	// database); run() re-arms it per statement to cancel the query.
	signal.Ignore(os.Interrupt)
	fmt.Println("monetlite shell — \\q to quit, \\t for tables, \\plan SQL for plans, \\checkpoint, \\vacuum; Ctrl-C cancels the running query")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("sql> ")
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == `\q`:
			return 0
		case strings.TrimSpace(line) == `\t`:
			for _, t := range db.Tables() {
				fmt.Println(" ", t)
			}
			fmt.Print("sql> ")
			continue
		case strings.TrimSpace(line) == `\checkpoint`:
			if err := db.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println("ok")
			}
			fmt.Print("sql> ")
			continue
		case strings.TrimSpace(line) == `\vacuum`:
			n, err := db.Vacuum()
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Printf("ok, %d tables vacuumed\n", n)
			}
			fmt.Print("sql> ")
			continue
		case strings.HasPrefix(strings.TrimSpace(line), `\plan `):
			sql := strings.TrimPrefix(strings.TrimSpace(line), `\plan `)
			plan, err := conn.Plan(sql)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println(plan)
			}
			fmt.Print("sql> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			for _, stmt := range splitStatements(buf.String()) {
				if err := run(ctx, conn, stmt); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				}
			}
			buf.Reset()
			fmt.Print("sql> ")
		}
	}
	return 0
}

// closeDB closes db, reporting a failed close — a failed checkpoint on
// a -d database — to stderr and returning the error so realMain can
// turn it into a nonzero exit.
func closeDB(db *engine.DB) error {
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "error: close:", err)
		return err
	}
	return nil
}

func splitStatements(src string) []string {
	var out []string
	for _, s := range strings.Split(src, ";") {
		if strings.TrimSpace(s) != "" {
			out = append(out, s)
		}
	}
	return out
}

// run prepares and executes one statement; SELECT results stream
// through the cursor row by row. Ctrl-C cancels the statement (checked
// at morsel boundaries in the parallel pipeline) without killing the
// shell; SIGTERM cancels it through the parent context.
func run(parent context.Context, conn *engine.Conn, sql string) error {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt)
	defer stop()

	stmt, err := conn.Prepare(sql)
	if err != nil {
		return err
	}
	defer stmt.Close()

	if !stmt.IsQuery() {
		res, err := stmt.Exec(ctx)
		if err != nil {
			return err
		}
		if res.RowsAffected > 0 {
			fmt.Printf("ok, %d rows affected\n", res.RowsAffected)
		} else {
			fmt.Println("ok")
		}
		return nil
	}

	rows, err := stmt.Query(ctx)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols := rows.Columns()
	fmt.Println("| " + strings.Join(cols, " | ") + " |")
	n := 0
	cells := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range cells {
		ptrs[i] = &cells[i]
	}
	for rows.Next() {
		parts := make([]string, len(cols))
		if err := rows.Scan(ptrs...); err != nil {
			return err
		}
		for i, v := range cells {
			if v == nil {
				parts[i] = "<nil>"
			} else {
				parts[i] = fmt.Sprint(v)
			}
		}
		fmt.Println("| " + strings.Join(parts, " | ") + " |")
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d rows)\n", n)
	return nil
}
