// Command monetlite is an interactive SQL shell over the columnar engine:
// statements are parsed by the SQL front-end, compiled to MAL, optimized,
// and executed by the BAT-algebra interpreter — the full Figure-1 stack.
//
// Usage:
//
//	monetlite            # interactive shell on stdin
//	monetlite -e 'SQL'   # run one statement and exit
//	monetlite -f file    # run a script of semicolon-separated statements
//	monetlite -recycle   # enable the intermediate-result recycler
//
// Shell extras: \q quits, \t lists tables, \mal SQL prints the optimized
// MAL plan instead of running it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/recycler"
	"repro/internal/sqlfe"
)

func main() {
	exec := flag.String("e", "", "execute one statement and exit")
	file := flag.String("f", "", "execute a script file")
	recycle := flag.Bool("recycle", false, "enable the intermediate-result recycler")
	flag.Parse()

	db := sqlfe.NewDB()
	if *recycle {
		db.Recycle = recycler.New(256<<20, recycler.PolicyBenefit)
	}

	if *exec != "" {
		if err := run(db, *exec); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, stmt := range splitStatements(string(data)) {
			if err := run(db, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("monetlite shell — \\q to quit, \\t for tables, \\mal SQL for plans")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("sql> ")
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == `\q`:
			return
		case strings.TrimSpace(line) == `\t`:
			for _, t := range db.Tables() {
				fmt.Println(" ", t)
			}
			fmt.Print("sql> ")
			continue
		case strings.HasPrefix(strings.TrimSpace(line), `\mal `):
			sql := strings.TrimPrefix(strings.TrimSpace(line), `\mal `)
			if err := showMAL(db, sql); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			fmt.Print("sql> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			for _, stmt := range splitStatements(buf.String()) {
				if err := run(db, stmt); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				}
			}
			buf.Reset()
			fmt.Print("sql> ")
		}
	}
}

func splitStatements(src string) []string {
	var out []string
	for _, s := range strings.Split(src, ";") {
		if strings.TrimSpace(s) != "" {
			out = append(out, s)
		}
	}
	return out
}

func run(db *sqlfe.DB, sql string) error {
	res, err := db.Exec(sql)
	if err != nil {
		return err
	}
	if len(res.Columns) > 0 {
		fmt.Print(res.String())
		fmt.Printf("(%d rows)\n", len(res.Rows))
	} else if res.Affected > 0 {
		fmt.Printf("ok, %d rows affected\n", res.Affected)
	} else {
		fmt.Println("ok")
	}
	return nil
}

func showMAL(db *sqlfe.DB, sql string) error {
	st, err := sqlfe.Parse(sql)
	if err != nil {
		return err
	}
	sel, ok := st.(*sqlfe.Select)
	if !ok {
		return fmt.Errorf("\\mal takes a SELECT")
	}
	prog, err := db.Snapshot().CompileSelect(sel)
	if err != nil {
		return err
	}
	fmt.Print(prog.String())
	return nil
}
