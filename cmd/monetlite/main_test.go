package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/engine"
	"repro/internal/wal"
)

// A failed Close on a -d database is a failed checkpoint: the on-disk
// state is behind what the session acknowledged. closeDB must surface
// that (realMain turns it into exit code 1) instead of discarding it
// the way a bare `defer db.Close()` did.
func TestCloseDBReportsCheckpointFailure(t *testing.T) {
	fs := wal.NewMemFS()
	db, err := engine.Open(engine.WithDir(t.TempDir()), engine.WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.Exec(ctx, `CREATE TABLE t (x INT)`); err != nil {
		t.Fatal(err)
	}
	// Poison the log: the next fsync fails, every later durability
	// operation — including Close's checkpoint — reports the poisoning.
	injected := errors.New("injected disk failure")
	fs.FailSyncsAfter(0, injected)
	if _, err := db.Exec(ctx, `INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("write after failed fsync should error")
	}
	err = closeDB(db)
	if err == nil {
		t.Fatal("closeDB after a poisoned WAL should report the failed checkpoint")
	}
	if !strings.Contains(err.Error(), "durability") {
		t.Fatalf("closeDB = %v, want a durability-failure error", err)
	}
}

func TestCloseDBCleanClose(t *testing.T) {
	db, err := engine.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := closeDB(db); err != nil {
		t.Fatalf("clean close = %v, want nil", err)
	}
}
