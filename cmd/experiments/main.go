// Command experiments regenerates the paper-reproduction tables E1–E14
// (see DESIGN.md §2 for the experiment index and EXPERIMENTS.md for a
// recorded reference run).
//
// Usage:
//
//	experiments            # run everything
//	experiments E3 E6 E9   # run a subset
//	experiments -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, id := range experiments.Order() {
			t := all[id]()
			fmt.Printf("%-4s %s\n", t.ID, t.Title)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.Order()
	}
	for _, id := range ids {
		f, ok := all[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		fmt.Println(f().String())
	}
}
