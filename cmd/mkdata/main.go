// Command mkdata dumps the synthetic workloads (DESIGN.md §3 substitutes
// for the paper's benchmark data) as persisted BAT files, so experiments
// can be re-run against identical inputs.
//
// Usage:
//
//	mkdata -kind uniform -n 1048576 -domain 1000 -o col.bat
//	mkdata -kind zipf    -n 1048576 -o zipf.bat
//	mkdata -kind sorted  -n 1048576 -o sorted.bat
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bat"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "uniform", "uniform | zipf | sorted | clustered")
	n := flag.Int("n", 1<<20, "number of values")
	domain := flag.Int64("domain", 1<<20, "value domain")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "mkdata: -o output file required")
		os.Exit(2)
	}
	var vals []int64
	switch *kind {
	case "uniform":
		vals = workload.UniformInts(*n, *domain, *seed)
	case "zipf":
		vals = workload.ZipfInts(*n, uint64(*domain), 1.3, *seed)
	case "sorted":
		vals = workload.SortedInts(*n, 3, *seed)
	case "clustered":
		vals = workload.ClusteredInts(*n, 8, 256, *seed)
	default:
		fmt.Fprintf(os.Stderr, "mkdata: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	b := bat.FromInts(vals).SetName(*kind)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkdata:", err)
		os.Exit(1)
	}
	defer f.Close()
	nbytes, err := b.WriteTo(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkdata:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d values (%d bytes) to %s\n", len(vals), nbytes, *out)
}
