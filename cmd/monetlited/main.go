// Command monetlited serves a monetlite database over the wire
// protocol (internal/server/wire; Go clients use repro/client, humans
// use monetlite -connect).
//
// Usage:
//
//	monetlited                      # in-memory DB on localhost:7687
//	monetlited -d dir               # durable DB (WAL + recovery + checkpoint on exit)
//	monetlited -listen host:port    # listen address
//	monetlited -workers N           # concurrently executing queries (default GOMAXPROCS)
//	monetlited -queue N             # admission queue depth beyond the workers (default 4×workers)
//	monetlited -budget BYTES        # per-query memory budget; 0 = unlimited
//	monetlited -mem-policy POLICY   # what over-budget queries get: reject (default) or spill
//	monetlited -spill-dir DIR       # spill-file directory (default: <-d>/spill, or a temp dir)
//	monetlited -stmt-timeout DUR    # cancel statements that run longer than DUR; 0 = no limit
//	monetlited -tls-cert/-tls-key   # serve TLS (both or neither)
//
// One process owns the database; every connection is a session onto
// the shared engine, so prepared plans are shared across connections
// (the plan cache) and total query concurrency is bounded (admission
// control rejects excess with typed errors instead of queueing without
// bound).
//
// SIGTERM and SIGINT drain: the listener closes, sessions finish their
// in-flight command, and the database closes — which CHECKPOINTS a -d
// database — before the process exits. A drain stuck past the grace
// period force-cancels in-flight queries at their next morsel
// boundary. Exit is through realMain's return so the deferred close
// always runs.
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/engine"
	"repro/internal/server"
)

func main() {
	os.Exit(realMain())
}

func realMain() (code int) {
	listen := flag.String("listen", "localhost:7687", "listen address")
	dir := flag.String("d", "", "persist the database in this directory")
	workers := flag.Int("workers", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth beyond the workers (0 = 4x workers)")
	budget := flag.Int64("budget", 0, "per-query memory budget in bytes (0 = unlimited)")
	memPolicy := flag.String("mem-policy", "reject", "over-budget queries are rejected or spill to disk (reject|spill)")
	spillDir := flag.String("spill-dir", "", "spill-file directory for -mem-policy spill (default <-d>/spill, or a temp dir)")
	stmtTimeout := flag.Duration("stmt-timeout", 0, "per-statement execution timeout (0 = no limit)")
	recycle := flag.Bool("recycle", false, "enable the intermediate-result recycler")
	tlsCert := flag.String("tls-cert", "", "TLS certificate file (with -tls-key)")
	tlsKey := flag.String("tls-key", "", "TLS key file (with -tls-cert)")
	grace := flag.Duration("grace", 30*time.Second, "drain grace period before in-flight queries are canceled")
	flag.Parse()

	logger := log.New(os.Stderr, "monetlited: ", log.LstdFlags)

	if (*tlsCert == "") != (*tlsKey == "") {
		logger.Print("-tls-cert and -tls-key must be given together")
		return 1
	}

	if *memPolicy != "reject" && *memPolicy != "spill" {
		logger.Printf("-mem-policy %q: want reject or spill", *memPolicy)
		return 1
	}

	var opts []engine.Option
	if *dir != "" {
		opts = append(opts, engine.WithDir(*dir))
	}
	if *recycle {
		opts = append(opts, engine.WithRecycler(256<<20))
	}
	if *budget > 0 {
		// The engine's runtime ledger enforces the budget per query;
		// under -mem-policy spill, over-grants degrade to disk instead
		// of failing.
		opts = append(opts, engine.WithMemBudget(*budget))
		if *memPolicy == "spill" {
			sd := *spillDir
			switch {
			case sd != "":
			case *dir != "":
				sd = filepath.Join(*dir, "spill")
			default:
				tmp, err := os.MkdirTemp("", "monetlited-spill-*")
				if err != nil {
					logger.Printf("spill dir: %v", err)
					return 1
				}
				defer func() {
					if err := os.RemoveAll(tmp); err != nil {
						logger.Printf("removing spill dir: %v", err)
					}
				}()
				sd = tmp
			}
			opts = append(opts, engine.WithSpill(sd))
		}
	}
	db, err := engine.Open(opts...)
	if err != nil {
		logger.Print(err)
		return 1
	}
	// Close checkpoints a -d database. A failed close means the disk
	// state is behind what sessions were told was committed — say so in
	// the exit code.
	defer func() {
		if err := db.Close(); err != nil {
			logger.Printf("close: %v", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	srv, err := server.New(server.Config{
		DB:          db,
		Workers:     *workers,
		QueueDepth:  *queue,
		MemBudget:   *budget,
		MemPolicy:   *memPolicy,
		StmtTimeout: *stmtTimeout,
		Banner:      "monetlited",
		Logf:        logger.Printf,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}

	var ln net.Listener
	if *tlsCert != "" {
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			logger.Printf("tls: %v", err)
			return 1
		}
		ln, err = tls.Listen("tcp", *listen, &tls.Config{Certificates: []tls.Certificate{cert}})
		if err != nil {
			logger.Print(err)
			return 1
		}
	} else {
		ln, err = net.Listen("tcp", *listen)
		if err != nil {
			logger.Print(err)
			return 1
		}
	}
	logger.Printf("serving on %s", ln.Addr())
	// The e2e smoke test needs the bound port when -listen used :0.
	fmt.Printf("listening %s\n", ln.Addr())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func(ctx context.Context) {
		serveErr <- srv.Serve(ctx, ln)
	}(ctx)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		if err != nil {
			logger.Print(err)
			return 1
		}
		return 0
	case s := <-sig:
		logger.Printf("%s: draining", s)
		sctx, scancel := context.WithTimeout(ctx, *grace)
		defer scancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Printf("drain: %v", err)
		}
		if err := <-serveErr; err != nil {
			logger.Print(err)
			return 1
		}
		logger.Print("drained; closing database")
		return 0
	}
}
