// Command lintmonet runs the engine's custom static-analysis suite
// (internal/lint): nilsentinel, lockedcall, walcheck, hotpathmap and
// ctxmorsel — the invariants PRs 1–6 introduced, machine-checked.
//
// Two modes:
//
//	lintmonet ./...                       # standalone, like staticcheck
//	go vet -vettool=$(which lintmonet) ./...   # unitchecker protocol
//
// The vettool mode speaks the `go vet` driver protocol without
// depending on golang.org/x/tools: go vet invokes the tool once with
// -V=full (version fingerprint for result caching), once with -flags
// (supported-flag discovery), and then once per package with a
// JSON .cfg file naming the source files and the export data of every
// dependency. Diagnostics go to stderr as file:line:col messages; a
// non-zero exit fails the vet run, which is how CI gates on the suite.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var cfgPath string
	var patterns []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			return printVersion()
		case a == "-flags" || a == "--flags":
			// No tool-specific flags: report an empty flag set so the go
			// command passes none through.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(a, ".cfg"):
			cfgPath = a
		case strings.HasPrefix(a, "-"):
			// Unknown driver flag (e.g. -json from a future go version):
			// ignore rather than die, the .cfg argument carries the work.
		default:
			patterns = append(patterns, a)
		}
	}
	if cfgPath != "" {
		return runVetTool(cfgPath)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return runStandalone(patterns)
}

// printVersion implements `lintmonet -V=full`: the go command caches
// vet results keyed by this line, so it must change whenever the tool
// binary changes — hash the executable, the way cmd/compile's
// objabi.AddVersionFlag does.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintmonet:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintmonet:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "lintmonet:", err)
		return 1
	}
	fmt.Printf("lintmonet version devel buildID=%x\n", h.Sum(nil)[:16])
	return 0
}

// vetConfig is the subset of the go vet driver's per-package config
// file that the suite needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func runVetTool(cfgPath string) int {
	blob, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintmonet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(blob, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "lintmonet: %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver expects the facts file regardless of outcome. The suite
	// exports no cross-package facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "lintmonet:", err)
			return 1
		}
	}
	// Dependencies are handed over for fact propagation only; with no
	// facts there is nothing to do. Test-variant packages (ImportPath
	// "pkg [pkg.test]") re-list the non-test files the base package run
	// already covers — skip them rather than reporting everything twice.
	if cfg.VetxOnly || strings.HasSuffix(cfg.ImportPath, "]") {
		return 0
	}
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	// Source import paths may be aliases (vendoring); canonicalize.
	for from, to := range cfg.ImportMap {
		if from != to {
			if file, ok := cfg.PackageFile[to]; ok {
				exports[from] = file
			}
		}
	}
	pkg, err := lint.TypeCheck(cfg.ImportPath, cfg.GoFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "lintmonet:", err)
		return 1
	}
	return report(lint.Run(pkg, lint.All()))
}

func runStandalone(patterns []string) int {
	pkgs, err := lint.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintmonet:", err)
		return 1
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		all = append(all, lint.Run(pkg, lint.All())...)
	}
	return report(all)
}

func report(diags []lint.Diagnostic) int {
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}
